"""Tests for the HTTP/JSON serving gateway: admission, hedging, swap.

Three layers are pinned here:

* the admission primitives (token bucket + bounded async waiting room)
  in isolation, on a private event loop;
* the gateway's HTTP surface end to end over real sockets — predict
  parity bit-for-bit with the in-process server, 429 + ``Retry-After``
  under saturation (never a hang), hedged dispatch winning against a
  slow replica, hot swap/rollback riding the content-hash registry;
* the ``/stats`` JSON schema (key set + types, including the gateway
  counters) so external consumers and ``BENCH_serving.json`` cannot
  drift silently.
"""

import asyncio
import io
import json
import os
import select
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main
from repro.core import TreeConfig, train_tree
from repro.core.persistence import save_model_local
from repro.data import ProblemKind, write_csv
from repro.data.shm import list_segments
from repro.datasets import SyntheticSpec, generate
from repro.ensemble import ForestModel
from repro.serving import (
    AdmissionController,
    BatchPredictor,
    Gateway,
    GatewayConfig,
    GatewayThread,
    PredictionServer,
    QuotaConfig,
    ServerConfig,
    ThrottledError,
    TokenBucket,
    combine_reports,
    compile_forest,
)
from repro.serving.server import QueueFullError

REPO_ROOT = Path(__file__).parents[1]


def make_table(seed, problem=ProblemKind.CLASSIFICATION, rows=200):
    return generate(
        SyntheticSpec(
            name="t",
            n_rows=rows,
            n_numeric=3,
            n_categorical=2,
            n_classes=3,
            problem=problem,
            planted_depth=4,
            noise=0.1,
            seed=seed,
        )
    )


def make_forest(table, n_trees=2, max_depth=5, seed=0):
    return ForestModel(
        [
            train_tree(table, TreeConfig(max_depth=max_depth, seed=seed + i))
            for i in range(n_trees)
        ]
    )


def _matrix_of(table):
    return np.column_stack(
        [np.asarray(col, dtype=np.float64) for col in table.columns]
    )


def http_call(port, method, path, body=None, headers=None, timeout=30.0):
    """One HTTP request against a local gateway; returns (status, json)."""
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=data,
        headers=headers or {},
        method=method,
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read()), response
    except urllib.error.HTTPError as error:
        payload = json.loads(error.read())
        return error.code, payload, error


class SlowPredictor(BatchPredictor):
    """A predictor whose kernel straggles — the hedging target."""

    def __init__(self, flat, delay_seconds):
        super().__init__(flat)
        self.delay_seconds = delay_seconds

    def predict_proba_matrix(self, matrix, max_depth=None):
        time.sleep(self.delay_seconds)
        return super().predict_proba_matrix(matrix, max_depth)

    def predict_matrix(self, matrix, max_depth=None):
        time.sleep(self.delay_seconds)
        return super().predict_matrix(matrix, max_depth)


class GatedPredictor(BatchPredictor):
    """A predictor that blocks until released — builds real queue depth."""

    def __init__(self, flat, gate):
        super().__init__(flat)
        self._gate = gate

    def predict_proba_matrix(self, matrix, max_depth=None):
        self._gate.wait(timeout=30.0)
        return super().predict_proba_matrix(matrix, max_depth)

    def predict_matrix(self, matrix, max_depth=None):
        self._gate.wait(timeout=30.0)
        return super().predict_matrix(matrix, max_depth)


# ----------------------------------------------------------------------
# admission primitives
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=1000.0, burst=3)
        assert [bucket.try_take() for _ in range(3)] == [True] * 3
        # Drained: the next token is ~1ms away.
        took = bucket.try_take()
        if not took:
            assert 0.0 < bucket.eta_seconds() <= 0.0015
            time.sleep(0.005)
            assert bucket.try_take()

    def test_eta_counts_deficit(self):
        bucket = TokenBucket(rate=10.0, burst=1)
        assert bucket.try_take()
        eta = bucket.eta_seconds(tokens=2.0)
        assert 0.1 < eta <= 0.2 + 0.05


class TestQuotaConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate": 0.0},
            {"rate": -1.0},
            {"burst": 0},
            {"max_waiters": -1},
            {"max_wait_seconds": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            QuotaConfig(**kwargs)


class TestAdmissionController:
    def _run(self, coro):
        return asyncio.run(coro)

    def test_disabled_quota_admits_everything(self):
        controller = AdmissionController(QuotaConfig(rate=None))

        async def drive():
            for _ in range(50):
                assert await controller.admit("anyone") == 0.0

        self._run(drive())
        assert controller.stats.admitted == 50
        assert controller.stats.throttled == 0

    def test_burst_admits_then_parks(self):
        controller = AdmissionController(
            QuotaConfig(rate=50.0, burst=2, max_waiters=8,
                        max_wait_seconds=2.0)
        )

        async def drive():
            waits = [await controller.admit("a") for _ in range(4)]
            return waits

        waits = self._run(drive())
        assert waits[0] == 0.0 and waits[1] == 0.0  # burst
        assert waits[2] > 0.0 and waits[3] > 0.0  # parked, not bounced
        assert controller.stats.admitted == 4
        assert controller.stats.throttled == 0
        assert controller.stats.queue_wait_percentile_ms(99) > 0.0

    def test_waiting_room_bound_throttles_with_retry_after(self):
        controller = AdmissionController(
            QuotaConfig(rate=1.0, burst=1, max_waiters=2,
                        max_wait_seconds=60.0)
        )

        async def drive():
            assert await controller.admit("a") == 0.0  # burst token
            parked = [
                asyncio.ensure_future(controller.admit("a"))
                for _ in range(2)
            ]
            await asyncio.sleep(0.05)  # let both enter the waiting room
            with pytest.raises(ThrottledError) as excinfo:
                await controller.admit("a")
            for task in parked:
                task.cancel()
            await asyncio.gather(*parked, return_exceptions=True)
            return excinfo.value

        error = self._run(drive())
        assert error.retry_after > 0.0
        assert "waiting room full" in error.reason
        assert controller.stats.throttled == 1

    def test_projected_wait_bound_throttles(self):
        controller = AdmissionController(
            QuotaConfig(rate=1.0, burst=1, max_waiters=64,
                        max_wait_seconds=0.05)
        )

        async def drive():
            assert await controller.admit("a") == 0.0
            with pytest.raises(ThrottledError) as excinfo:
                await controller.admit("a")  # next token ~1s away
            return excinfo.value

        error = self._run(drive())
        assert "projected wait too long" in error.reason
        assert error.retry_after > 0.05

    def test_clients_do_not_share_buckets(self):
        controller = AdmissionController(
            QuotaConfig(rate=1.0, burst=1, max_waiters=4,
                        max_wait_seconds=0.01)
        )

        async def drive():
            assert await controller.admit("tenant-a") == 0.0
            # tenant-a is out of tokens; tenant-b is untouched.
            with pytest.raises(ThrottledError):
                await controller.admit("tenant-a")
            assert await controller.admit("tenant-b") == 0.0

        self._run(drive())


# ----------------------------------------------------------------------
# QueueFullError carries structured state (no message parsing)
# ----------------------------------------------------------------------
class TestQueueFullErrorState:
    def test_attributes_and_message(self):
        error = QueueFullError(3, 8)
        assert error.queue_depth == 3
        assert error.capacity == 8
        assert "3/8" in str(error)

    def test_submit_attaches_live_depth(self):
        table = make_table(1)
        forest = make_forest(table)
        gate = threading.Event()
        predictor = GatedPredictor(compile_forest(forest), gate)
        config = ServerConfig(queue_capacity=2, max_delay_seconds=0.0)
        row = _matrix_of(table)[:1]
        with PredictionServer(predictor, config) as server:
            futures = [server.submit(row)]  # dispatcher takes it, blocks
            time.sleep(0.05)
            futures += [server.submit(row), server.submit(row)]  # fills queue
            with pytest.raises(QueueFullError) as excinfo:
                while True:  # depth 2 is racy by one; saturate for sure
                    futures.append(server.submit(row))
            gate.set()
            for future in futures:
                future.result(timeout=30.0)
        error = excinfo.value
        assert error.capacity == 2
        assert 1 <= error.queue_depth <= error.capacity


# ----------------------------------------------------------------------
# the gateway over real sockets
# ----------------------------------------------------------------------
@pytest.fixture
def classification_setup():
    table = make_table(2)
    forest = make_forest(table, n_trees=3)
    return table, forest, _matrix_of(table)


def run_gateway(replicas, **config_kwargs):
    gateway = Gateway(replicas, GatewayConfig(port=0, **config_kwargs))
    runner = GatewayThread(gateway).start()
    return gateway, runner


class TestGatewayHttp:
    def test_predict_parity_labels_and_proba(self, classification_setup):
        table, forest, mat = classification_setup
        with PredictionServer(forest) as reference:
            ref_labels = reference.predict(mat)
            ref_proba = reference.predict_proba(mat)
        gateway, runner = run_gateway([PredictionServer(forest)])
        try:
            status, payload, _ = http_call(
                runner.port, "POST", "/predict", {"rows": mat.tolist()}
            )
            assert status == 200
            assert payload["n_rows"] == len(mat)
            assert np.array_equal(
                np.asarray(payload["predictions"]), ref_labels
            )
            status, payload, _ = http_call(
                runner.port, "POST", "/predict",
                {"rows": mat.tolist(), "proba": True},
            )
            assert status == 200
            # JSON floats round-trip exactly (repr is shortest-exact).
            assert np.array_equal(
                np.asarray(payload["predictions"]), ref_proba
            )
        finally:
            runner.stop()

    def test_predict_parity_regression(self):
        table = make_table(3, problem=ProblemKind.REGRESSION)
        forest = make_forest(table)
        mat = _matrix_of(table)
        with PredictionServer(forest) as reference:
            ref = reference.predict(mat)
        gateway, runner = run_gateway([PredictionServer(forest)])
        try:
            status, payload, _ = http_call(
                runner.port, "POST", "/predict", {"rows": mat.tolist()}
            )
            assert status == 200
            assert np.array_equal(np.asarray(payload["predictions"]), ref)
        finally:
            runner.stop()

    def test_predict_through_fleet_replica(self, classification_setup):
        """E2E: the HTTP path through a real multi-process fleet."""
        table, forest, mat = classification_setup
        with PredictionServer(forest) as reference:
            ref = reference.predict(mat)
        before = set(list_segments())
        gateway, runner = run_gateway(
            [PredictionServer(forest, n_workers=2)]
        )
        try:
            status, payload, _ = http_call(
                runner.port, "POST", "/predict", {"rows": mat.tolist()}
            )
            assert status == 200
            assert np.array_equal(np.asarray(payload["predictions"]), ref)
            status, stats, _ = http_call(runner.port, "GET", "/stats")
            assert stats["fleet"]["n_workers"] == 2
        finally:
            runner.stop()
        assert set(list_segments()) == before  # fleet segments unlinked

    def test_malformed_requests(self, classification_setup):
        _table, forest, mat = classification_setup
        gateway, runner = run_gateway([PredictionServer(forest)])
        try:
            port = runner.port
            status, payload, _ = http_call(port, "POST", "/predict", {})
            assert status == 400 and "rows" in payload["error"]
            status, payload, _ = http_call(
                port, "POST", "/predict", {"rows": [["not", "numbers"]]}
            )
            assert status == 400
            status, payload, _ = http_call(port, "GET", "/no-such")
            assert status == 404
            status, payload, _ = http_call(port, "GET", "/predict")
            assert status == 405
            status, payload, _ = http_call(port, "POST", "/healthz", {})
            assert status == 405
            # Raw non-JSON body.
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/predict",
                data=b"not json",
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 400
            # The gateway survived all of it.
            status, payload, _ = http_call(port, "GET", "/healthz")
            assert status == 200 and payload["status"] == "ok"
        finally:
            runner.stop()

    def test_healthz_shape(self, classification_setup):
        _table, forest, _mat = classification_setup
        gateway, runner = run_gateway([PredictionServer(forest)])
        try:
            status, payload, _ = http_call(runner.port, "GET", "/healthz")
            assert status == 200
            assert payload["status"] == "ok"
            assert payload["replicas"] == 1
            assert payload["model_key"] == gateway.model_key
            assert payload["uptime_seconds"] >= 0.0
        finally:
            runner.stop()

    def test_saturating_client_throttled_never_hangs(
        self, classification_setup
    ):
        """A client far over quota gets 429 + Retry-After, not a hang."""
        _table, forest, mat = classification_setup
        gateway, runner = run_gateway(
            [PredictionServer(forest)],
            quota=QuotaConfig(
                rate=2.0, burst=2, max_waiters=2, max_wait_seconds=0.05
            ),
        )
        try:
            port = runner.port
            row = mat[:1].tolist()
            statuses, retry_afters = [], []
            for _ in range(30):
                status, payload, response = http_call(
                    port, "POST", "/predict", {"rows": row},
                    headers={"X-Client": "greedy"},
                )
                statuses.append(status)
                if status == 429:
                    header = response.headers.get("Retry-After")
                    assert header is not None
                    retry_afters.append(int(header))
                    assert payload["retry_after_seconds"] > 0.0
            assert statuses.count(200) >= 2  # the burst got through
            assert statuses.count(429) > 0  # the flood was throttled
            assert all(value >= 1 for value in retry_afters)
            assert set(statuses) <= {200, 429}  # never a 5xx, never a hang
            # A different client is unaffected by the greedy one.
            status, _payload, _ = http_call(
                port, "POST", "/predict", {"rows": row},
                headers={"X-Client": "polite"},
            )
            assert status == 200
            status, stats, _ = http_call(port, "GET", "/stats")
            gw = stats["gateway"]
            assert gw["throttled"] == gw["throttled_quota"] > 0
            assert gw["admitted"] >= 3
        finally:
            runner.stop()

    def test_replica_queue_full_maps_to_429_with_depth(self):
        table = make_table(4)
        forest = make_forest(table)
        gate = threading.Event()
        predictor = GatedPredictor(compile_forest(forest), gate)
        server = PredictionServer(
            predictor, ServerConfig(queue_capacity=1, max_delay_seconds=0.0)
        )
        gateway, runner = run_gateway([server])
        try:
            row = _matrix_of(table)[:1]
            # Build real queue depth: one request blocked in the kernel,
            # one parked in the bounded queue.
            blocked = server.submit(row)
            time.sleep(0.05)
            queued = server.submit(row)
            status, payload, response = http_call(
                runner.port, "POST", "/predict", {"rows": row.tolist()}
            )
            assert status == 429
            assert payload["error"] == "queue full"
            assert payload["capacity"] == 1
            assert payload["queue_depth"] >= 1
            assert int(response.headers["Retry-After"]) >= 1
            gate.set()
            blocked.result(timeout=30.0)
            queued.result(timeout=30.0)
            status, stats, _ = http_call(runner.port, "GET", "/stats")
            assert stats["gateway"]["throttled_queue_full"] == 1
        finally:
            gate.set()
            runner.stop()

    def test_hedging_beats_a_slow_replica(self, classification_setup):
        table, forest, mat = classification_setup
        flat = compile_forest(forest)
        with PredictionServer(forest) as reference:
            ref = reference.predict(mat[:8])
        fast = PredictionServer(BatchPredictor(flat))
        slow = PredictionServer(SlowPredictor(flat, delay_seconds=0.4))
        gateway, runner = run_gateway([fast, slow], hedge_after_ms=20.0)
        try:
            started = time.monotonic()
            for _ in range(6):  # round-robin: half land on the straggler
                status, payload, _ = http_call(
                    runner.port, "POST", "/predict",
                    {"rows": mat[:8].tolist()},
                )
                assert status == 200
                assert np.array_equal(np.asarray(payload["predictions"]), ref)
            elapsed = time.monotonic() - started
            status, stats, _ = http_call(runner.port, "GET", "/stats")
            gw = stats["gateway"]
            assert gw["hedges_fired"] >= 3
            assert gw["hedge_wins"] >= 3
            # 3 requests landed on the 400ms replica; hedging cut each to
            # ~20ms + fast-path time.  Without hedging this loop needs
            # >= 1.2s in the slow kernels alone.
            assert elapsed < 1.2
        finally:
            runner.stop()

    def test_hedging_disabled_with_single_replica(self, classification_setup):
        _table, forest, mat = classification_setup
        gateway, runner = run_gateway(
            [PredictionServer(forest)], hedge_after_ms=0.0
        )
        try:
            status, payload, _ = http_call(
                runner.port, "POST", "/predict", {"rows": mat[:4].tolist()}
            )
            assert status == 200 and payload["hedged"] is False
            assert gateway.stats.hedges_fired == 0
        finally:
            runner.stop()

    def test_swap_and_rollback_endpoints(self, tmp_path, classification_setup):
        table, forest_a, mat = classification_setup
        forest_b = make_forest(table, n_trees=4, seed=77)
        dir_a, dir_b = tmp_path / "model-a", tmp_path / "model-b"
        save_model_local(dir_a, "model", forest_a.trees)
        save_model_local(dir_b, "model", forest_b.trees)
        with PredictionServer(forest_a) as ref:
            ref_a = ref.predict(mat)
        with PredictionServer(forest_b) as ref:
            ref_b = ref.predict(mat)

        gateway, runner = run_gateway([PredictionServer(forest_a)])
        try:
            port = runner.port
            initial_key = gateway.model_key

            status, payload, _ = http_call(
                port, "POST", "/models/swap", {"model_dir": str(dir_b)}
            )
            assert status == 200 and payload["swapped"] is True
            key_b = payload["model_key"]
            assert key_b != initial_key
            status, payload, _ = http_call(
                port, "POST", "/predict", {"rows": mat.tolist()}
            )
            assert np.array_equal(np.asarray(payload["predictions"]), ref_b)

            # Swapping identical content is a no-op (content hash = id).
            status, payload, _ = http_call(
                port, "POST", "/models/swap", {"model_dir": str(dir_b)}
            )
            assert status == 200 and payload["swapped"] is False

            status, payload, _ = http_call(
                port, "POST", "/models/rollback", {}
            )
            assert status == 200
            assert payload["rolled_back_from"] == key_b
            status, payload, _ = http_call(
                port, "POST", "/predict", {"rows": mat.tolist()}
            )
            assert np.array_equal(np.asarray(payload["predictions"]), ref_a)

            # History exhausted: rollback past the initial model is 409.
            status, payload, _ = http_call(
                port, "POST", "/models/rollback", {}
            )
            assert status == 409

            status, payload, _ = http_call(
                port, "POST", "/models/swap", {"model_dir": "/no/such/dir"}
            )
            assert status == 400

            status, stats, _ = http_call(port, "GET", "/stats")
            assert stats["gateway"]["swaps"] == 1
            assert stats["gateway"]["rollbacks"] == 1
        finally:
            runner.stop()

    def test_swap_rejects_problem_kind_change(self, tmp_path):
        table = make_table(5)
        forest = make_forest(table)
        regression = make_forest(make_table(6, problem=ProblemKind.REGRESSION))
        reg_dir = tmp_path / "reg-model"
        save_model_local(reg_dir, "model", regression.trees)
        gateway, runner = run_gateway([PredictionServer(forest)])
        try:
            status, payload, _ = http_call(
                runner.port, "POST", "/models/swap",
                {"model_dir": str(reg_dir)},
            )
            assert status == 400 and "problem kind" in payload["error"]
        finally:
            runner.stop()

    def test_gateway_validation(self, classification_setup):
        _table, forest, _mat = classification_setup
        with pytest.raises(ValueError, match="at least one replica"):
            Gateway([])
        regression = make_forest(make_table(7, problem=ProblemKind.REGRESSION))
        with pytest.raises(ValueError, match="same problem kind"):
            Gateway(
                [PredictionServer(forest), PredictionServer(regression)]
            )
        with pytest.raises(ValueError):
            GatewayConfig(hedge_after_ms=-1.0)
        with pytest.raises(ValueError):
            GatewayConfig(hedge_min_ms=5.0, hedge_max_ms=1.0)
        with pytest.raises(ValueError):
            GatewayConfig(request_timeout_seconds=0.0)


# ----------------------------------------------------------------------
# hedge-delay derivation and report merging
# ----------------------------------------------------------------------
class TestHedgeDelay:
    def _gateway(self, forest, **kwargs):
        return Gateway([PredictionServer(forest)], GatewayConfig(**kwargs))

    def test_fixed_delay_wins(self, classification_setup):
        _table, forest, _mat = classification_setup
        gateway = self._gateway(forest, hedge_after_ms=7.5)
        assert gateway.hedge_delay_seconds() == pytest.approx(0.0075)

    def test_adaptive_uses_initial_before_samples(self, classification_setup):
        _table, forest, _mat = classification_setup
        gateway = self._gateway(forest, hedge_initial_ms=33.0)
        assert gateway.hedge_delay_seconds() == pytest.approx(0.033)

    def test_adaptive_tracks_p99_with_clamps(self, classification_setup):
        _table, forest, _mat = classification_setup
        gateway = self._gateway(
            forest, hedge_min_ms=5.0, hedge_max_ms=100.0, hedge_min_samples=10
        )
        gateway.stats.latencies.extend([0.010] * 50)  # p99 = 10ms
        assert gateway.hedge_delay_seconds() == pytest.approx(0.010, rel=0.01)
        gateway.stats.latencies.extend([10.0] * 50)  # p99 explodes
        assert gateway.hedge_delay_seconds() == pytest.approx(0.100)  # clamp
        gateway.stats.latencies.clear()
        gateway.stats.latencies.extend([0.0001] * 50)  # sub-clamp p99
        assert gateway.hedge_delay_seconds() == pytest.approx(0.005)


class TestCombineReports:
    def test_counters_add_percentiles_take_worst(self, classification_setup):
        table, forest, mat = classification_setup
        reports = []
        for _ in range(2):
            with PredictionServer(forest) as server:
                server.predict(mat)
                reports.append(server.report())
        merged = combine_reports(reports)
        assert merged.n_requests == sum(r.n_requests for r in reports)
        assert merged.n_rows == 2 * len(mat)
        assert merged.p99_latency_ms == max(r.p99_latency_ms for r in reports)
        assert merged.rows_per_second == pytest.approx(
            sum(r.rows_per_second for r in reports)
        )
        with pytest.raises(ValueError):
            combine_reports([])


# ----------------------------------------------------------------------
# /stats schema pin: key set + types, gateway counters included
# ----------------------------------------------------------------------
#: The pinned ServingReport.to_dict() schema.  ``int`` counters stay int
#: through JSON; everything in milliseconds/seconds/rates is float (or
#: int-zero before traffic, hence the (int, float) unions below).
SERVING_REPORT_SCHEMA = {
    "n_requests": int,
    "n_rows": int,
    "n_batches": int,
    "rejected": int,
    "rejected_queue_full": int,
    "rejected_shutdown": int,
    "avg_batch_rows": (int, float),
    "rows_per_second": (int, float),
    "p50_latency_ms": (int, float),
    "p99_latency_ms": (int, float),
    "max_latency_ms": (int, float),
    "kernel_seconds": (int, float),
}

GATEWAY_COUNTERS_SCHEMA = {
    "replicas": int,
    "http_requests": int,
    "http_errors": int,
    "admitted": int,
    "throttled": int,
    "throttled_quota": int,
    "throttled_queue_full": int,
    "hedges_fired": int,
    "hedge_wins": int,
    "swaps": int,
    "rollbacks": int,
    "hedge_delay_ms": (int, float),
    "queue_wait_ms_p50": (int, float),
    "queue_wait_ms_p99": (int, float),
    "gateway_p50_latency_ms": (int, float),
    "gateway_p99_latency_ms": (int, float),
}

FLEET_SCHEMA = {
    "n_workers": int,
    "respawns": int,
    "model_key": str,
    "model_nbytes": int,
    "model_quantized": bool,
    "workers": list,
}


def _assert_schema(payload, schema, context):
    assert set(payload) == set(schema), (
        f"{context}: keys drifted — "
        f"extra={set(payload) - set(schema)} "
        f"missing={set(schema) - set(payload)}"
    )
    for key, kind in schema.items():
        assert isinstance(payload[key], kind), (
            f"{context}[{key}] is {type(payload[key]).__name__}, "
            f"expected {kind}"
        )


class TestStatsSchema:
    def test_plain_report_schema(self, classification_setup):
        _table, forest, mat = classification_setup
        with PredictionServer(forest) as server:
            server.predict(mat)
            payload = json.loads(json.dumps(server.report().to_dict()))
        _assert_schema(payload, SERVING_REPORT_SCHEMA, "ServingReport")

    def test_fleet_report_schema(self, classification_setup):
        _table, forest, mat = classification_setup
        with PredictionServer(forest, n_workers=1) as server:
            server.predict(mat)
            payload = json.loads(json.dumps(server.report().to_dict()))
        schema = dict(SERVING_REPORT_SCHEMA, fleet=dict)
        _assert_schema(payload, schema, "ServingReport+fleet")
        _assert_schema(payload["fleet"], FLEET_SCHEMA, "fleet")

    def test_http_stats_schema_with_gateway_counters(
        self, classification_setup
    ):
        _table, forest, mat = classification_setup
        gateway, runner = run_gateway([PredictionServer(forest)])
        try:
            status, _payload, _ = http_call(
                runner.port, "POST", "/predict", {"rows": mat[:4].tolist()}
            )
            assert status == 200
            status, payload, _ = http_call(runner.port, "GET", "/stats")
            assert status == 200
        finally:
            runner.stop()
        schema = dict(SERVING_REPORT_SCHEMA, gateway=dict, replicas=list)
        _assert_schema(payload, schema, "/stats")
        _assert_schema(
            payload["gateway"], GATEWAY_COUNTERS_SCHEMA, "/stats.gateway"
        )
        for replica_report in payload["replicas"]:
            _assert_schema(
                replica_report, SERVING_REPORT_SCHEMA, "/stats.replicas[]"
            )


# ----------------------------------------------------------------------
# CLI: repro serve --http end to end (real process, SIGINT shutdown)
# ----------------------------------------------------------------------
class TestCliGateway:
    @pytest.fixture
    def trained(self, tmp_path):
        table = make_table(9)
        csv_path = tmp_path / "data.csv"
        write_csv(table, csv_path)
        model_dir = tmp_path / "model"
        code = main(
            [
                "train", "--csv", str(csv_path), "--target", "label",
                "--model-dir", str(model_dir), "--forest", "2",
                "--max-depth", "5", "--workers", "2", "--compers", "2",
            ],
            out=io.StringIO(),
        )
        assert code == 0
        return table, model_dir

    def test_serve_without_csv_or_http_is_an_error(self, trained):
        _table, model_dir = trained
        code = main(
            ["serve", "--model-dir", str(model_dir)], out=io.StringIO()
        )
        assert code == 2

    def _read_port(self, process, timeout=60.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            ready, _, _ = select.select([process.stdout], [], [], 1.0)
            if not ready:
                if process.poll() is not None:
                    break
                continue
            line = process.stdout.readline()
            if "listening on" in line:
                return int(line.split("http://")[1].split()[0].split(":")[1])
        raise AssertionError("gateway never reported its port")

    def test_http_serve_predict_and_shutdown(self, trained):
        table, model_dir = trained
        mat = _matrix_of(table)
        env = dict(
            os.environ, PYTHONPATH=str(REPO_ROOT / "src"),
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve", "--http",
                "--port", "0", "--model-dir", str(model_dir),
                "--client-rate", "1000",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            port = self._read_port(process)
            status, payload, _ = http_call(port, "GET", "/healthz")
            assert status == 200 and payload["status"] == "ok"
            status, payload, _ = http_call(
                port, "POST", "/predict", {"rows": mat[:16].tolist()},
                headers={"X-Client": "cli-test"},
            )
            assert status == 200
            from repro.serving import load_compiled_local

            entry, _hit = load_compiled_local(model_dir)
            with PredictionServer(entry.predictor) as reference:
                expected = reference.predict(mat[:16])
            assert np.array_equal(
                np.asarray(payload["predictions"]), expected
            )
            status, stats, _ = http_call(port, "GET", "/stats")
            assert stats["gateway"]["admitted"] >= 1
        finally:
            process.send_signal(signal.SIGINT)
            try:
                output = process.communicate(timeout=60.0)[0]
            except subprocess.TimeoutExpired:  # pragma: no cover
                process.kill()
                raise
        assert process.returncode == 0
        assert "gateway: requests=" in output
