"""Unit tests for task payloads and worker/master protocol edge cases."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import SimulatedCluster
from repro.core import SystemConfig, TreeConfig, TreeServer, decision_tree_job
from repro.core.impurity import Impurity
from repro.core.tasks import (
    MSG_EXPECT_FETCHES,
    MSG_ROW_REQUEST,
    ExpectFetchesMsg,
    NodeStatsPayload,
    PlanEntry,
    RootRows,
    RowRequestMsg,
    TreeContext,
)
from repro.core.worker import ProtocolError, WorkerActor
from repro.data.schema import ProblemKind
from repro.datasets import SyntheticSpec, generate


class TestNodeStatsPayload:
    def test_classification_stats(self):
        y = np.array([0, 1, 1, 2, 1])
        stats = NodeStatsPayload.from_labels(y, ProblemKind.CLASSIFICATION, 3)
        assert stats.n_rows == 5
        assert stats.counts.tolist() == [1, 3, 1]
        assert not stats.is_pure
        np.testing.assert_allclose(stats.prediction(), [0.2, 0.6, 0.2])

    def test_pure_classification(self):
        y = np.array([2, 2, 2])
        stats = NodeStatsPayload.from_labels(y, ProblemKind.CLASSIFICATION, 4)
        assert stats.is_pure

    def test_regression_stats(self):
        y = np.array([1.0, 3.0])
        stats = NodeStatsPayload.from_labels(y, ProblemKind.REGRESSION, 0)
        assert stats.prediction() == pytest.approx(2.0)
        assert not stats.is_pure

    def test_pure_regression_exact(self):
        y = np.full(4, 1.2345)
        stats = NodeStatsPayload.from_labels(y, ProblemKind.REGRESSION, 0)
        assert stats.is_pure

    def test_near_pure_regression_not_pure(self):
        """Purity must be exact equality, not a variance threshold — the
        serial builder and the distributed master must agree bit-for-bit."""
        y = np.array([1.0, 1.0 + 1e-15])
        stats = NodeStatsPayload.from_labels(y, ProblemKind.REGRESSION, 0)
        assert not stats.is_pure

    def test_impurity_matches_direct_computation(self):
        y = np.array([0, 0, 1, 1, 1, 2])
        stats = NodeStatsPayload.from_labels(y, ProblemKind.CLASSIFICATION, 3)
        from repro.core.impurity import classification_impurity

        expected = classification_impurity(
            np.bincount(y, minlength=3).astype(float), Impurity.GINI
        )
        assert stats.impurity(Impurity.GINI) == pytest.approx(expected)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=50)
    )
    def test_property_prediction_sums_to_one(self, labels):
        y = np.array(labels)
        stats = NodeStatsPayload.from_labels(y, ProblemKind.CLASSIFICATION, 5)
        assert float(np.sum(stats.prediction())) == pytest.approx(1.0)
        assert stats.is_pure == (len(set(labels)) == 1)


class TestRootRows:
    def _ctx(self, bootstrap: bool, n: int = 50, seed: int = 3) -> TreeContext:
        return TreeContext(
            tree_uid=1,
            config=TreeConfig(seed=seed),
            candidate_columns=(0,),
            bootstrap=bootstrap,
            n_table_rows=n,
        )

    def test_plain_root_is_arange(self):
        rows = RootRows(self._ctx(bootstrap=False)).materialize()
        np.testing.assert_array_equal(rows, np.arange(50))

    def test_bootstrap_root_is_seeded_sample(self):
        a = RootRows(self._ctx(bootstrap=True)).materialize()
        b = RootRows(self._ctx(bootstrap=True)).materialize()
        np.testing.assert_array_equal(a, b)  # any machine regenerates it
        assert len(a) == 50
        assert a.max() < 50

    def test_bootstrap_differs_by_seed(self):
        a = RootRows(self._ctx(bootstrap=True, seed=1)).materialize()
        b = RootRows(self._ctx(bootstrap=True, seed=2)).materialize()
        assert not np.array_equal(a, b)


class TestPlanEntry:
    def test_accessors(self):
        ctx = TreeContext(7, TreeConfig(), (0, 1), False, 100)
        entry = PlanEntry(
            task=(7, 5), n_rows=10, depth=2, parent=None, ctx=ctx,
            is_subtree=True,
        )
        assert entry.tree_uid == 7
        assert entry.path == 5


def _make_worker() -> tuple[SimulatedCluster, WorkerActor]:
    table = generate(
        SyntheticSpec(
            name="w", n_rows=40, n_numeric=2, n_categorical=0, seed=1,
            planted_depth=2,
        )
    )
    cluster = SimulatedCluster(n_workers=2, compers_per_worker=1)
    worker = WorkerActor(cluster, 1, table, held_columns={0, 1})
    cluster.register(1, worker)
    return cluster, worker


class TestWorkerProtocolErrors:
    def test_unheld_column_access_rejected(self):
        _, worker = _make_worker()
        with pytest.raises(ProtocolError, match="does not hold"):
            worker.column_values(99)

    def test_row_request_for_unknown_store_rejected(self):
        cluster, worker = _make_worker()
        request = RowRequestMsg(
            parent_task=(1, 1), side=0, requester=2, tag=("column", (1, 2))
        )
        cluster.send(2, 1, MSG_ROW_REQUEST, request, 10)
        with pytest.raises(ProtocolError, match="holds no such rows"):
            cluster.run()

    def test_expect_fetches_for_missing_store_rejected(self):
        cluster, worker = _make_worker()
        msg = ExpectFetchesMsg(task=(1, 1), side=0, count=0)
        cluster.send(0, 1, MSG_EXPECT_FETCHES, msg, 10)
        with pytest.raises(ProtocolError, match="missing store"):
            cluster.run()

    def test_unknown_payload_rejected(self):
        cluster, worker = _make_worker()
        cluster.send(0, 1, "garbage", object(), 10)
        with pytest.raises(ProtocolError, match="unknown payload"):
            cluster.run()

    def test_revoked_tree_messages_ignored(self):
        from repro.core.tasks import RevokeTreeMsg

        cluster, worker = _make_worker()
        cluster.send(0, 1, "revoke", RevokeTreeMsg(tree_uid=1), 10)
        request = RowRequestMsg(
            parent_task=(1, 1), side=0, requester=2, tag=("column", (1, 2))
        )
        cluster.send(2, 1, MSG_ROW_REQUEST, request, 10)
        cluster.run()  # no ProtocolError: the tree is known-revoked


class TestEnginePropertyBased:
    @settings(max_examples=6, deadline=None)
    @given(
        workers=st.integers(min_value=1, max_value=6),
        tau=st.integers(min_value=4, max_value=400),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_any_configuration_is_exact(self, workers, tau, seed):
        """Hypothesis sweep of the headline invariant: any machine count,
        any tau, any dataset seed — the distributed tree is the exact one."""
        from repro.core import train_tree, trees_equal

        table = generate(
            SyntheticSpec(
                name="prop", n_rows=150, n_numeric=3, n_categorical=1,
                n_classes=2, planted_depth=3, noise=0.15, seed=seed,
            )
        )
        cfg = TreeConfig(max_depth=5)
        system = SystemConfig(
            n_workers=workers,
            compers_per_worker=2,
            tau_subtree=tau,
            tau_dfs=tau * 4,
        )
        report = TreeServer(system).fit(table, [decision_tree_job("dt", cfg)])
        assert trees_equal(train_tree(table, cfg), report.tree("dt"))
