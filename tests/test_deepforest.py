"""Tests for the deep forest pipeline: MGS, cascade, end-to-end model."""

import numpy as np
import pytest

from repro.core import SystemConfig, TreeKind
from repro.datasets import generate_images, train_test_images
from repro.deepforest import (
    CascadeConfig,
    CascadeForest,
    DeepForest,
    LocalBackend,
    MGSConfig,
    MultiGrainedScanner,
    TreeServerBackend,
    features_to_table,
    n_window_positions,
    sliding_windows,
    windows_to_table,
)
from repro.evaluation import accuracy


@pytest.fixture(scope="module")
def images():
    return train_test_images(120, 60, seed=5)


class TestSlidingWindows:
    def test_position_arithmetic(self):
        assert n_window_positions(28, 3, 1) == 26
        assert n_window_positions(28, 7, 1) == 22
        assert n_window_positions(28, 3, 5) == 6
        with pytest.raises(ValueError):
            n_window_positions(4, 7, 1)

    def test_window_shapes(self):
        data = generate_images(4, n_classes=2, side=12, seed=1)
        windows = sliding_windows(data.images, window=3, stride=2)
        positions = n_window_positions(12, 3, 2)
        assert windows.shape == (4, positions * positions, 9)

    def test_window_contents(self):
        image = np.arange(16, dtype=float).reshape(1, 4, 4)
        windows = sliding_windows(image, window=2, stride=2)
        np.testing.assert_array_equal(windows[0, 0], [0, 1, 4, 5])
        np.testing.assert_array_equal(windows[0, 3], [10, 11, 14, 15])

    def test_windows_to_table_repeats_labels(self):
        data = generate_images(3, n_classes=3, side=8, seed=2)
        windows = sliding_windows(data.images, 3, 3)
        table = windows_to_table(windows, data.labels, 3)
        positions = windows.shape[1]
        assert table.n_rows == 3 * positions
        np.testing.assert_array_equal(
            table.target[:positions], np.full(positions, data.labels[0])
        )


class TestMGS:
    def test_transform_dimensions(self, images):
        train, test = images
        config = MGSConfig(
            window_sizes=(5,), stride=6, n_forests=2, trees_per_forest=3, seed=1
        )
        scanner = MultiGrainedScanner(config, LocalBackend())
        scanner.fit_grain(5, train)
        features = scanner.transform_grain(5, test)
        positions = n_window_positions(train.side, 5, 6) ** 2
        assert features.shape == (
            test.n_images,
            positions * 2 * train.n_classes,
        )

    def test_features_are_pmf_blocks(self, images):
        train, _ = images
        config = MGSConfig(
            window_sizes=(7,), stride=7, n_forests=1, trees_per_forest=3, seed=2
        )
        scanner = MultiGrainedScanner(config, LocalBackend())
        scanner.fit_grain(7, train)
        features = scanner.transform_grain(7, train)
        k = train.n_classes
        blocks = features.reshape(train.n_images, -1, k)
        np.testing.assert_allclose(blocks.sum(axis=2), 1.0, atol=1e-9)

    def test_unfitted_grain_rejected(self, images):
        train, _ = images
        scanner = MultiGrainedScanner(MGSConfig(), LocalBackend())
        with pytest.raises(ValueError, match="not fitted"):
            scanner.transform_grain(3, train)

    def test_forest_kinds_cycle(self, images):
        train, _ = images
        config = MGSConfig(
            window_sizes=(5,),
            stride=7,
            n_forests=2,
            trees_per_forest=2,
            forest_kinds=(TreeKind.DECISION, TreeKind.EXTRA),
            seed=3,
        )
        scanner = MultiGrainedScanner(config, LocalBackend())
        grain = scanner.fit_grain(5, train)
        assert len(grain.forests) == 2
        assert grain.train_seconds > 0


class TestCascade:
    def _grain_features(self, train, test):
        config = MGSConfig(
            window_sizes=(5, 7), stride=7, n_forests=1, trees_per_forest=3, seed=4
        )
        scanner = MultiGrainedScanner(config, LocalBackend())
        scanner.fit(train)
        return (
            {w: scanner.transform_grain(w, train) for w in (5, 7)},
            {w: scanner.transform_grain(w, test) for w in (5, 7)},
        )

    def test_layer_input_concatenation(self, images):
        train, test = images
        train_features, _ = self._grain_features(train, test)
        cascade = CascadeForest(
            CascadeConfig(n_layers=2, n_forests=2, trees_per_forest=2, seed=1),
            LocalBackend(),
        )
        features0, window0 = cascade.layer_input(0, train_features, None)
        assert window0 == 5  # smallest window first
        prev = np.zeros((train.n_images, 4))
        features1, window1 = cascade.layer_input(1, train_features, prev)
        assert window1 == 7  # cycles to the next grain
        assert features1.shape[1] == train_features[7].shape[1] + 4

    def test_fit_and_predict(self, images):
        train, test = images
        train_features, test_features = self._grain_features(train, test)
        cascade = CascadeForest(
            CascadeConfig(n_layers=2, n_forests=2, trees_per_forest=3, seed=2),
            LocalBackend(),
        )
        previous = None
        for layer_index in range(2):
            _, previous = cascade.fit_layer(
                layer_index, train_features, train.labels, train.n_classes,
                previous,
            )
        per_layer = cascade.predict_proba_per_layer(test_features)
        assert len(per_layer) == 2
        for pmf in per_layer:
            assert pmf.shape == (test.n_images, train.n_classes)
            np.testing.assert_allclose(pmf.sum(axis=1), 1.0, atol=1e-9)
        labels = cascade.predict(test_features)
        assert accuracy(test.labels, labels) > 0.3

    def test_unfitted_predict_rejected(self):
        cascade = CascadeForest(CascadeConfig(), LocalBackend())
        with pytest.raises(RuntimeError, match="not fitted"):
            cascade.predict({})

    def test_features_to_table(self):
        rng = np.random.default_rng(0)
        feats = rng.normal(size=(10, 4))
        labels = rng.integers(0, 3, size=10)
        table = features_to_table(feats, labels, 3)
        assert table.n_rows == 10
        assert table.n_columns == 4
        assert table.n_classes == 3


class TestDeepForestEndToEnd:
    def test_fit_report_structure(self, images):
        train, test = images
        model = DeepForest(
            MGSConfig(window_sizes=(5, 7), stride=7, n_forests=2,
                      trees_per_forest=4, seed=6),
            CascadeConfig(n_layers=2, n_forests=2, trees_per_forest=4, seed=6),
        )
        report = model.fit_report(train, test)
        names = [s.step for s in report.steps]
        assert names[0] == "slide"
        assert "win5train" in names and "win5extract" in names
        assert "win7train" in names and "win7extract" in names
        assert "CF0train" in names and "CF1extract" in names
        # Accuracy recorded after every cascade layer.
        cf_accs = [s.test_accuracy for s in report.steps
                   if s.test_accuracy is not None]
        assert len(cf_accs) == 2
        assert report.final_accuracy() == cf_accs[-1]
        # Training times recorded for forest-training steps.
        assert report.step("win5train").train_seconds > 0

    def test_learns_better_than_chance(self, images):
        train, test = images
        model = DeepForest(
            MGSConfig(window_sizes=(5,), stride=6, n_forests=2,
                      trees_per_forest=6, seed=7),
            CascadeConfig(n_layers=2, n_forests=2, trees_per_forest=6, seed=7),
        )
        report = model.fit_report(train, test)
        assert report.final_accuracy() > 2.0 / train.n_classes

    def test_predict_matches_last_layer(self, images):
        train, test = images
        model = DeepForest(
            MGSConfig(window_sizes=(5,), stride=7, n_forests=1,
                      trees_per_forest=3, seed=8),
            CascadeConfig(n_layers=1, n_forests=1, trees_per_forest=3, seed=8),
        )
        report = model.fit_report(train, test)
        predictions = model.predict(test)
        assert accuracy(test.labels, predictions) == pytest.approx(
            report.final_accuracy()
        )

    def test_treeserver_backend_matches_local_model(self, images):
        """Backends differ only in timing — models are identical."""
        train, test = images
        mgs_cfg = MGSConfig(
            window_sizes=(7,), stride=9, n_forests=1, trees_per_forest=2, seed=9
        )
        local = MultiGrainedScanner(mgs_cfg, LocalBackend())
        local.fit_grain(7, train)
        simulated = MultiGrainedScanner(
            mgs_cfg,
            TreeServerBackend(SystemConfig(n_workers=3, compers_per_worker=2)),
        )
        simulated.fit_grain(7, train)
        np.testing.assert_allclose(
            local.transform_grain(7, test),
            simulated.transform_grain(7, test),
            atol=1e-12,
        )
        # The simulated backend reports real cluster seconds.
        assert simulated.grains[7].train_seconds > 0
