"""Tests for the Yggdrasil-style exact columnar baseline."""

import pytest

from repro.baselines import YggdrasilConfig, YggdrasilTrainer
from repro.core import TreeConfig, train_tree, trees_equal


class TestYggdrasil:
    def test_model_is_the_exact_tree(self, small_mixed_classification):
        cfg = TreeConfig(max_depth=6)
        report = YggdrasilTrainer().fit(small_mixed_classification, cfg)
        assert trees_equal(
            report.tree(), train_tree(small_mixed_classification, cfg)
        )

    def test_ledger_components(self, small_mixed_classification):
        report = YggdrasilTrainer().fit(
            small_mixed_classification, TreeConfig(max_depth=5)
        )
        assert report.sim_seconds == pytest.approx(
            report.compute_seconds
            + report.broadcast_seconds
            + report.overhead_seconds
        )
        assert report.n_levels >= 1
        assert report.broadcast_seconds > 0

    def test_forest_is_sequential(self, small_mixed_classification):
        one = YggdrasilTrainer().fit(
            small_mixed_classification, TreeConfig(max_depth=5)
        )
        five = YggdrasilTrainer().fit(
            small_mixed_classification, TreeConfig(max_depth=5), n_trees=5,
            seed=1,
        )
        assert len(five.trees) == 5
        # Level-synchronous trees run one after another: ~5x one tree
        # (forest trees are cheaper per tree due to sqrt-column sampling,
        # so allow a wide band below 5x).
        assert 1.5 < five.sim_seconds / one.sim_seconds < 7.0

    def test_parallelism_capped_by_columns(self, small_mixed_classification):
        """More threads than columns cannot speed the level scan up."""
        few = YggdrasilTrainer(
            YggdrasilConfig(n_machines=2, threads_per_machine=4)
        ).fit(small_mixed_classification, TreeConfig(max_depth=5))
        many = YggdrasilTrainer(
            YggdrasilConfig(n_machines=20, threads_per_machine=10)
        ).fit(small_mixed_classification, TreeConfig(max_depth=5))
        # 7 columns: 8 cores already exceed the cap, 200 cores gain nothing.
        assert many.compute_seconds == pytest.approx(few.compute_seconds)

    def test_broadcast_scales_with_machines(self, small_mixed_classification):
        small = YggdrasilTrainer(
            YggdrasilConfig(n_machines=4, threads_per_machine=10)
        ).fit(small_mixed_classification, TreeConfig(max_depth=5))
        large = YggdrasilTrainer(
            YggdrasilConfig(n_machines=16, threads_per_machine=10)
        ).fit(small_mixed_classification, TreeConfig(max_depth=5))
        assert large.broadcast_seconds > small.broadcast_seconds

    def test_tree_helper_rejects_forest(self, small_mixed_classification):
        report = YggdrasilTrainer().fit(
            small_mixed_classification, TreeConfig(max_depth=4), n_trees=2,
            seed=1,
        )
        with pytest.raises(ValueError):
            report.tree()
