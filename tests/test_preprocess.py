"""Tests for the Appendix-G preprocessing: joins and cleansing."""

import numpy as np
import pytest

from repro.data import (
    ColumnKind,
    ColumnSpec,
    DataTable,
    MISSING_CODE,
    ProblemKind,
    TableSchema,
)
from repro.data.preprocess import (
    cleanse,
    drop_sparse_columns,
    fill_missing,
    join_tables,
)


def origination_table() -> DataTable:
    """A tiny 'Origination Data' stand-in keyed by loan sequence number."""
    schema = TableSchema(
        (
            ColumnSpec("loan_seq", ColumnKind.CATEGORICAL, ("L1", "L2", "L3", "L4")),
            ColumnSpec("credit_score", ColumnKind.NUMERIC),
        ),
        ColumnSpec("default", ColumnKind.CATEGORICAL, ("no", "yes")),
        ProblemKind.CLASSIFICATION,
    )
    return DataTable(
        schema,
        [
            np.array([0, 1, 2, 3], dtype=np.int32),
            np.array([700.0, 650.0, 800.0, 720.0]),
        ],
        np.array([0, 1, 0, 0], dtype=np.int32),
    )


def monthly_table() -> DataTable:
    """A 'Monthly Performance' stand-in (unique key per loan here)."""
    schema = TableSchema(
        (
            ColumnSpec("loan_seq", ColumnKind.CATEGORICAL, ("L2", "L1", "L5")),
            ColumnSpec("balance", ColumnKind.NUMERIC),
        ),
        ColumnSpec("ignored", ColumnKind.CATEGORICAL, ("x",)),
        ProblemKind.CLASSIFICATION,
    )
    return DataTable(
        schema,
        [
            np.array([0, 1, 2], dtype=np.int32),
            np.array([120.0, 95.0, 40.0]),
        ],
        np.zeros(3, dtype=np.int32),
    )


class TestJoin:
    def test_inner_join_matches_by_label(self):
        joined = join_tables(origination_table(), monthly_table(), "loan_seq")
        # L1 and L2 match; L3, L4 have no monthly rows.
        assert joined.n_rows == 2
        names = [c.name for c in joined.schema.columns]
        assert names == ["credit_score", "balance"]
        # L1 -> balance 95 (right row 1), L2 -> balance 120 (right row 0).
        scores = joined.column(0).tolist()
        balances = joined.column(1).tolist()
        assert (700.0 in scores) and (650.0 in scores)
        pair = dict(zip(scores, balances))
        assert pair[700.0] == 95.0
        assert pair[650.0] == 120.0

    def test_target_comes_from_left(self):
        joined = join_tables(origination_table(), monthly_table(), "loan_seq")
        assert joined.schema.target.name == "default"
        assert set(joined.target.tolist()) == {0, 1}

    def test_duplicate_right_key_rejected(self):
        right = monthly_table()
        right.columns[0][2] = right.columns[0][0]  # duplicate L2
        with pytest.raises(ValueError, match="unique"):
            join_tables(origination_table(), right, "loan_seq")

    def test_kind_mismatch_rejected(self):
        left = origination_table()
        schema = TableSchema(
            (
                ColumnSpec("loan_seq", ColumnKind.NUMERIC),
                ColumnSpec("balance", ColumnKind.NUMERIC),
            ),
            ColumnSpec("y", ColumnKind.NUMERIC),
            ProblemKind.REGRESSION,
        )
        right = DataTable(
            schema,
            [np.array([1.0, 2.0]), np.array([3.0, 4.0])],
            np.array([0.0, 0.0]),
        )
        with pytest.raises(ValueError, match="kinds differ"):
            join_tables(left, right, "loan_seq")

    def test_empty_join_rejected(self):
        schema = TableSchema(
            (
                ColumnSpec("loan_seq", ColumnKind.CATEGORICAL, ("L8", "L9")),
                ColumnSpec("balance", ColumnKind.NUMERIC),
            ),
            ColumnSpec("ignored", ColumnKind.CATEGORICAL, ("x",)),
            ProblemKind.CLASSIFICATION,
        )
        right = DataTable(
            schema,
            [np.array([0, 1], dtype=np.int32), np.array([1.0, 2.0])],
            np.zeros(2, dtype=np.int32),
        )
        with pytest.raises(ValueError, match="no rows"):
            join_tables(origination_table(), right, "loan_seq")

    def test_name_collision_suffixed(self):
        left = origination_table()
        right = monthly_table()
        # Rename right's balance to collide with left's credit_score.
        schema = TableSchema(
            (
                right.schema.columns[0],
                ColumnSpec("credit_score", ColumnKind.NUMERIC),
            ),
            right.schema.target,
            right.problem,
        )
        right = DataTable(schema, list(right.columns), right.target)
        joined = join_tables(left, right, "loan_seq")
        names = [c.name for c in joined.schema.columns]
        assert "credit_score" in names and "credit_score_r" in names


class TestCleansing:
    def make_sparse(self) -> DataTable:
        schema = TableSchema(
            (
                ColumnSpec("mostly_missing", ColumnKind.NUMERIC),
                ColumnSpec("some_missing", ColumnKind.NUMERIC),
                ColumnSpec("cat", ColumnKind.CATEGORICAL, ("a", "b")),
            ),
            ColumnSpec("y", ColumnKind.CATEGORICAL, ("0", "1")),
            ProblemKind.CLASSIFICATION,
        )
        return DataTable(
            schema,
            [
                np.array([np.nan, np.nan, np.nan, 1.0]),
                np.array([1.0, np.nan, 3.0, 5.0]),
                np.array([0, MISSING_CODE, 1, 0], dtype=np.int32),
            ],
            np.array([0, 1, 0, 1], dtype=np.int32),
        )

    def test_drop_sparse_columns(self):
        cleaned = drop_sparse_columns(self.make_sparse(), 0.5)
        names = [c.name for c in cleaned.schema.columns]
        assert names == ["some_missing", "cat"]

    def test_drop_all_rejected(self):
        with pytest.raises(ValueError):
            drop_sparse_columns(self.make_sparse(), 0.0)

    def test_fill_missing_numeric_mean(self):
        filled = fill_missing(self.make_sparse())
        col = filled.column(1)
        assert not np.isnan(col).any()
        assert col[1] == pytest.approx((1.0 + 3.0 + 5.0) / 3)

    def test_fill_missing_categorical_mode(self):
        filled = fill_missing(self.make_sparse())
        col = filled.column(2)
        assert (col != MISSING_CODE).all()
        assert col[1] == 0  # mode of [0, 1, 0]

    def test_cleanse_pipeline(self):
        cleaned = cleanse(self.make_sparse(), 0.5)
        assert cleaned.n_columns == 2
        for i in range(cleaned.n_columns):
            assert not cleaned.missing_mask(i).any()

    def test_cleanse_enables_mllib_style_training(self):
        """The paper's reason for cleansing: MLlib cannot take missing
        values, so the Allstate-like table is cleansed for it."""
        from repro.baselines import PlanetTrainer
        from repro.core import TreeConfig
        from repro.datasets import dataset_spec, generate

        table = generate(dataset_spec("allstate", small=True))
        assert any(table.missing_mask(i).any() for i in range(table.n_columns))
        cleaned = fill_missing(table)
        report = PlanetTrainer().fit(cleaned, TreeConfig(max_depth=4))
        assert report.tree().n_nodes >= 3
