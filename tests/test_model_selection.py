"""Tests for pooled model selection (grid search in one TreeServer run)."""

import pytest

from repro.core import SystemConfig, TreeConfig
from repro.evaluation.model_selection import (
    Candidate,
    expand_grid,
    grid_search,
)


def small_system() -> SystemConfig:
    return SystemConfig(n_workers=3, compers_per_worker=2)


class TestExpandGrid:
    def test_cartesian_product(self):
        candidates = expand_grid(
            TreeConfig(), {"max_depth": [4, 8], "tau_leaf": [1, 16]}
        )
        assert len(candidates) == 4
        assert len({c.name for c in candidates}) == 4
        depths = {c.config.max_depth for c in candidates}
        assert depths == {4, 8}

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            expand_grid(TreeConfig(), {})

    def test_forest_candidates(self):
        candidates = expand_grid(TreeConfig(), {"max_depth": [4]}, n_trees=5)
        assert candidates[0].n_trees == 5


class TestGridSearch:
    def test_finds_a_best_candidate(self):
        from repro.datasets import SyntheticSpec, generate

        table = generate(
            SyntheticSpec(
                name="gs", n_rows=1500, n_numeric=6, n_categorical=0,
                n_classes=3, planted_depth=5, noise=0.03, seed=81,
            )
        )
        candidates = expand_grid(
            TreeConfig(), {"max_depth": [1, 8], "tau_leaf": [1]}
        )
        result = grid_search(table, candidates, small_system(), seed=1)
        assert result.best in result.results
        assert len(result.results) == 2
        assert result.sim_seconds > 0
        # A depth-1 stump cannot win against a real tree on clean 3-class
        # data with depth-5 planted structure.
        assert result.best.candidate.config.max_depth == 8

    def test_ranking_order(self, small_mixed_classification):
        candidates = expand_grid(TreeConfig(), {"max_depth": [1, 4, 8]})
        result = grid_search(
            small_mixed_classification, candidates, small_system(), seed=2
        )
        ranking = result.ranking()
        assert ranking[0].quality >= ranking[-1].quality
        assert result.best.quality == ranking[0].quality

    def test_regression_uses_rmse(self, small_regression):
        candidates = expand_grid(TreeConfig(), {"max_depth": [2, 6]})
        result = grid_search(
            small_regression, candidates, small_system(), seed=3
        )
        assert result.best.quality_metric == "rmse"
        ranking = result.ranking()
        assert ranking[0].quality <= ranking[-1].quality  # lower is better

    def test_pooled_run_not_slower_than_sequential(
        self, small_mixed_classification
    ):
        """The Section III claim: pooling candidates' tasks in one run is
        at least as fast as training candidates one per run."""
        candidates = expand_grid(TreeConfig(), {"max_depth": [3, 5, 7, 9]})
        result = grid_search(
            small_mixed_classification, candidates, small_system(), seed=4
        )
        assert result.sim_seconds <= result.sequential_sim_seconds * 1.02

    def test_models_returned(self, small_mixed_classification):
        candidates = expand_grid(TreeConfig(), {"max_depth": [4]})
        result = grid_search(
            small_mixed_classification, candidates, small_system(), seed=5
        )
        model = result.models[candidates[0].name]
        assert model.predict(small_mixed_classification).shape[0] == (
            small_mixed_classification.n_rows
        )

    def test_duplicate_names_rejected(self, small_mixed_classification):
        candidate = Candidate("same", TreeConfig())
        with pytest.raises(ValueError, match="unique"):
            grid_search(
                small_mixed_classification,
                [candidate, candidate],
                small_system(),
            )

    def test_no_candidates_rejected(self, small_mixed_classification):
        with pytest.raises(ValueError, match="no candidates"):
            grid_search(small_mixed_classification, [], small_system())
