"""Property-based tests: the Fig. 13 grid layout over random shapes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.schema import ColumnKind, ColumnSpec, ProblemKind, TableSchema
from repro.data.table import DataTable
from repro.hdfs import LayoutConfig, SimHdfs, TableLayout


def make_table(n_rows: int, n_numeric: int, n_categorical: int, seed: int):
    rng = np.random.default_rng(seed)
    specs = []
    columns = []
    for i in range(n_numeric):
        specs.append(ColumnSpec(f"n{i}", ColumnKind.NUMERIC))
        col = rng.normal(size=n_rows)
        col[rng.random(n_rows) < 0.1] = np.nan
        columns.append(col)
    for i in range(n_categorical):
        specs.append(ColumnSpec(f"c{i}", ColumnKind.CATEGORICAL, ("a", "b", "c")))
        columns.append(rng.integers(-1, 3, size=n_rows).astype(np.int32))
    schema = TableSchema(
        tuple(specs),
        ColumnSpec("y", ColumnKind.CATEGORICAL, ("x", "y")),
        ProblemKind.CLASSIFICATION,
    )
    return DataTable(schema, columns, rng.integers(0, 2, n_rows).astype(np.int32))


@settings(max_examples=25, deadline=None)
@given(
    n_rows=st.integers(min_value=1, max_value=300),
    n_numeric=st.integers(min_value=0, max_value=5),
    n_categorical=st.integers(min_value=0, max_value=4),
    cols_per_group=st.integers(min_value=1, max_value=7),
    rows_per_group=st.integers(min_value=1, max_value=200),
    seed=st.integers(min_value=0, max_value=100),
)
def test_grid_round_trip_property(
    n_rows, n_numeric, n_categorical, cols_per_group, rows_per_group, seed
):
    """save -> load_table reconstructs every value for any grid shape."""
    if n_numeric + n_categorical == 0:
        n_numeric = 1
    table = make_table(n_rows, n_numeric, n_categorical, seed)
    fs = SimHdfs()
    layout = TableLayout(
        fs,
        "/p",
        LayoutConfig(
            columns_per_group=cols_per_group, rows_per_group=rows_per_group
        ),
    )
    layout.save(table)
    back = layout.load_table()
    assert back.n_rows == table.n_rows
    for i in range(table.n_columns):
        a, b = table.column(i), back.column(i)
        if a.dtype == np.float64:
            np.testing.assert_array_equal(np.isnan(a), np.isnan(b))
            np.testing.assert_array_equal(a[~np.isnan(a)], b[~np.isnan(b)])
        else:
            np.testing.assert_array_equal(a, b)
    np.testing.assert_array_equal(back.target, table.target)


@settings(max_examples=15, deadline=None)
@given(
    n_rows=st.integers(min_value=2, max_value=200),
    rows_per_group=st.integers(min_value=1, max_value=90),
    seed=st.integers(min_value=0, max_value=50),
)
def test_row_groups_partition_rows(n_rows, rows_per_group, seed):
    """Row-group loads concatenate back to the full table, in order."""
    table = make_table(n_rows, 2, 1, seed)
    fs = SimHdfs()
    layout = TableLayout(
        fs, "/p", LayoutConfig(columns_per_group=2, rows_per_group=rows_per_group)
    )
    layout.save(table)
    pieces = [
        layout.load_row_group(g)
        for g in range(layout.n_row_groups(n_rows))
    ]
    assert sum(p.n_rows for p in pieces) == n_rows
    joined = np.concatenate([p.target for p in pieces])
    np.testing.assert_array_equal(joined, table.target)


@settings(max_examples=15, deadline=None)
@given(
    n_columns=st.integers(min_value=1, max_value=12),
    cols_per_group=st.integers(min_value=1, max_value=12),
)
def test_column_groups_partition_columns(n_columns, cols_per_group):
    """Column groups cover every column exactly once."""
    layout = TableLayout(
        SimHdfs(), "/p", LayoutConfig(columns_per_group=cols_per_group)
    )
    seen: list[int] = []
    for g in range(layout.n_column_groups(n_columns)):
        seen.extend(layout.columns_of_group(g, n_columns))
    assert seen == list(range(n_columns))
