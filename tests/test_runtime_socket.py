"""The socket runtime: parity, rendezvous, recovery, shutdown hygiene.

The headline guarantee mirrors the mp suite: ``TreeServer(...,
backend="socket")`` — the protocol over length-prefixed pickled frames
on persistent TCP, master as frame hub — trains forests **bit-identical**
to the simulator and the mp backend on the same table, config and seed,
with the shared-memory data plane on and off, and even when a worker is
hard-killed mid-run under ``fault_policy="recover"``.

The socket-only surface is pinned here too: the rendezvous handshake
rejects bad peers (wrong protocol version, mismatched table fingerprint,
out-of-range or duplicate worker ids, hosts missing from the roster)
with explanatory unwelcomes while letting the real roster through, the
external ``--listen`` / ``repro worker`` mode works with per-host shm
gating (different host ids fall back to inline row ids), a half-open
socket surfaces as :class:`WorkerDiedError` within the timeout, and a
finished run leaks neither subprocesses, shm segments, nor sockets.
"""

from __future__ import annotations

import io
import multiprocessing
import os
import socket as socket_module
import threading

import pytest

from repro import SystemConfig, TreeConfig, TreeServer, random_forest_job, trees_equal
from repro.datasets import dataset_spec, generate
from repro.runtime import (
    ProcessRuntime,
    RuntimeOptions,
    SocketRuntime,
    WorkerDiedError,
    create_runtime,
)
from repro.runtime.socket import (
    CTRL_DST,
    SOCKET_PROTOCOL_VERSION,
    ConnectionClosed,
    FrameStream,
    HandshakeError,
    connect_worker,
    parse_address,
)

#: CI runs this suite twice — REPRO_MP_SHM=1 and =0 — exactly like the mp
#: suite, so the parity pins cover both data planes.
SHM_DEFAULT = os.environ.get("REPRO_MP_SHM", "1").lower() not in (
    "0", "off", "false",
)


def _options(**kw) -> RuntimeOptions:
    kw.setdefault("message_timeout_seconds", 15.0)
    kw.setdefault("poll_interval_seconds", 0.02)
    kw.setdefault("use_shm", SHM_DEFAULT)
    return RuntimeOptions(**kw)


def _table(name="higgs_boson"):
    return generate(dataset_spec(name, small=True))


def _system(n_workers=3, **kw):
    table_rows = kw.pop("table_rows", 700)
    return SystemConfig(
        n_workers=n_workers, compers_per_worker=2, **kw
    ).scaled_to(table_rows)


def _fit(backend, table, jobs, n_workers=3, options=None):
    server = TreeServer(
        _system(n_workers, table_rows=table.n_rows),
        backend=backend,
        runtime_options=options or _options(),
    )
    return server.fit(table, jobs)


def assert_bit_identical(expected, got):
    assert len(expected) == len(got)
    for a, b in zip(expected, got):
        assert trees_equal(a, b)
        assert a.to_dict() == b.to_dict()


def _repro_segments():
    from repro.data.shared import list_segments

    return list_segments()


def _open_socket_count() -> int:
    """Sockets currently open in this process (Linux procfs)."""
    count = 0
    for fd in os.listdir("/proc/self/fd"):
        try:
            if os.readlink(f"/proc/self/fd/{fd}").startswith("socket:"):
                count += 1
        except OSError:
            continue
    return count


def _free_port() -> int:
    with socket_module.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _dial(port, deadline_seconds=10.0) -> FrameStream:
    """Connect to a master that may still be binding its listener."""
    import time

    deadline = time.monotonic() + deadline_seconds
    while True:
        try:
            return FrameStream(
                socket_module.create_connection(("127.0.0.1", port), timeout=10)
            )
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.02)


# ----------------------------------------------------------------------
# parity: the acceptance pin
# ----------------------------------------------------------------------
class TestParity:
    def test_three_worker_loopback_matches_sim_and_mp(self):
        """One model, three substrates — with and without shm."""
        table = _table()
        jobs = [random_forest_job("rf", 4, TreeConfig(max_depth=8), seed=5)]
        reference = _fit("sim", table, jobs).trees("rf")
        for use_shm in (True, False):
            options = _options(use_shm=use_shm)
            mp_trees = _fit("mp", table, jobs, options=options).trees("rf")
            sock = _fit("socket", table, jobs, options=options)
            assert_bit_identical(reference, mp_trees)
            assert_bit_identical(reference, sock.trees("rf"))
            assert sock.backend == "socket"
            assert sock.wall_seconds > 0
        assert multiprocessing.active_children() == []
        assert _repro_segments() == []

    def test_transport_counters_and_no_leaked_sockets(self):
        sockets_before = _open_socket_count()
        table = _table("covtype")
        jobs = [random_forest_job("rf", 2, TreeConfig(max_depth=6), seed=1)]
        report = _fit("socket", table, jobs, n_workers=2)
        transport = report.cluster.transport
        assert transport["start_method"] != "external"  # self-launch mode
        assert transport["messages_sent"] > 0
        assert transport["bytes_pickled"] > 0
        assert set(transport["per_worker"]) == {1, 2}
        # Listener, per-worker connections and worker ends are all closed.
        assert _open_socket_count() <= sockets_before
        assert multiprocessing.active_children() == []
        assert _repro_segments() == []


# ----------------------------------------------------------------------
# rendezvous: external mode, admission checks, timeout
# ----------------------------------------------------------------------
class TestRendezvous:
    def test_external_mode_rejections_then_parity(self):
        """A master waiting on ``--listen`` turns away a garbage frame,
        a wrong protocol version, a mismatched table fingerprint, an
        out-of-range worker id and an off-roster host — each with an
        explanatory unwelcome — then trains bit-identically with the two
        real workers.  Distinct host ids force the inline row-id
        fallback (no shm descriptors cross hosts)."""
        from repro.core.tasks import WorkerHelloMsg, WorkerWelcomeMsg
        from repro.runtime.socket import _read_ctrl, _send_ctrl

        table = _table("covtype")
        jobs = [random_forest_job("rf", 3, TreeConfig(max_depth=6), seed=9)]
        reference = _fit("sim", table, jobs).trees("rf")
        port = _free_port()
        options = _options(
            listen=f"127.0.0.1:{port}",
            expected_hosts=("host-a", "host-b"),
            rendezvous_timeout_seconds=30.0,
        )
        result: dict = {}

        def run_master():
            try:
                result["report"] = _fit(
                    "socket", table, jobs, n_workers=2, options=options
                )
            except BaseException as error:  # pragma: no cover - diagnostics
                result["error"] = error

        master = threading.Thread(target=run_master, daemon=True)
        master.start()

        from repro.data.table import table_fingerprint

        good_hash = table_fingerprint(table)

        def hello(**kw):
            kw.setdefault("protocol_version", SOCKET_PROTOCOL_VERSION)
            kw.setdefault("table_hash", good_hash)
            kw.setdefault("host_id", "host-a")
            return WorkerHelloMsg(**kw)

        rejected = [
            (hello(worker_id=1, protocol_version=999), "protocol version"),
            (hello(worker_id=1, table_hash="0" * 64), "fingerprint"),
            (hello(worker_id=7), "out of range"),
            (hello(worker_id=1, host_id="host-evil"), "expected_hosts"),
        ]
        for bad, needle in rejected:
            stream = _dial(port)
            try:
                _send_ctrl(stream, bad)
                welcome = _read_ctrl(stream, 10.0, WorkerWelcomeMsg)
                assert welcome is not None and not welcome.ok
                assert needle in welcome.error
            finally:
                stream.close()
        # A non-hello frame gets an explanatory unwelcome too.
        stream = _dial(port)
        try:
            stream.send_frame(CTRL_DST, b"not json at all")
            welcome = _read_ctrl(stream, 10.0, WorkerWelcomeMsg)
            assert welcome is not None and not welcome.ok
            assert "hello" in welcome.error
        finally:
            stream.close()

        # A stalled client that connects but never sends a hello must
        # not block the real workers: hellos are read concurrently, so
        # it only occupies its own reader thread, not the roster-wide
        # rendezvous deadline.
        stalled = _dial(port)

        # The real roster: two `repro worker`-equivalent clients with
        # distinct host ids (inline fallback across "hosts").
        codes: dict[int, int] = {}

        def run_worker(wid, host):
            codes[wid] = connect_worker(
                ("127.0.0.1", port), wid, table, host_id=host
            )

        workers = [
            threading.Thread(
                target=run_worker, args=(1, "host-a"), daemon=True
            ),
            threading.Thread(
                target=run_worker, args=(2, "host-b"), daemon=True
            ),
        ]
        for thread in workers:
            thread.start()
        master.join(timeout=120.0)
        for thread in workers:
            thread.join(timeout=30.0)
        stalled.close()
        assert not master.is_alive()
        if "error" in result:
            raise result["error"]
        report = result["report"]
        assert_bit_identical(reference, report.trees("rf"))
        assert report.cluster.transport["start_method"] == "external"
        assert codes == {1: 0, 2: 0}
        assert _repro_segments() == []

    def test_duplicate_worker_id_rejected(self):
        """Two clients claiming worker id 1: exactly one gets the seat,
        the other is turned away with "already joined", and the run
        completes.  Hellos are read concurrently (so a stalled client
        cannot burn the rendezvous deadline), which makes arrival order
        between near-simultaneous claims arbitrary — as it always is on
        a real network — so this pins the invariant, not the winner."""
        from repro.core.tasks import WorkerHelloMsg, WorkerWelcomeMsg
        from repro.data.table import table_fingerprint
        from repro.runtime.socket import (
            _read_ctrl,
            _run_socket_worker,
            _send_ctrl,
        )

        table = _table("covtype")
        jobs = [random_forest_job("rf", 1, TreeConfig(max_depth=4), seed=2)]
        port = _free_port()
        options = _options(
            listen=f"127.0.0.1:{port}", rendezvous_timeout_seconds=30.0
        )
        result: dict = {}

        def run_master():
            try:
                result["report"] = _fit(
                    "socket", table, jobs, n_workers=2, options=options
                )
            except BaseException as error:  # pragma: no cover - diagnostics
                result["error"] = error

        master = threading.Thread(target=run_master, daemon=True)
        master.start()

        def hello(wid):
            return WorkerHelloMsg(
                worker_id=wid,
                protocol_version=SOCKET_PROTOCOL_VERSION,
                table_hash=table_fingerprint(table),
                host_id="host-dup",
            )

        claimants = [_dial(port), _dial(port)]
        for stream in claimants:
            _send_ctrl(stream, hello(1))
        # Worker 2 completes the roster so the barrier welcome can go
        # out to whichever claimant won seat 1.
        second = threading.Thread(
            target=lambda: connect_worker(
                ("127.0.0.1", port), 2, table, host_id="host-dup"
            ),
            daemon=True,
        )
        second.start()
        replies: dict[int, WorkerWelcomeMsg | None] = {}

        def read_reply(index):
            replies[index] = _read_ctrl(
                claimants[index], 30.0, WorkerWelcomeMsg
            )

        readers = [
            threading.Thread(target=read_reply, args=(i,), daemon=True)
            for i in range(2)
        ]
        for thread in readers:
            thread.start()
        for thread in readers:
            thread.join(timeout=60.0)
        assert all(reply is not None for reply in replies.values())
        winners = [i for i, reply in replies.items() if reply.ok]
        losers = [i for i, reply in replies.items() if not reply.ok]
        assert len(winners) == 1 and len(losers) == 1
        assert "already joined" in replies[losers[0]].error
        claimants[losers[0]].close()
        # The winning connection serves the run as worker 1.
        code = _run_socket_worker(
            claimants[winners[0]],
            replies[winners[0]],
            1,
            table,
            "host-dup",
            None,
            None,
        )
        assert code == 0
        master.join(timeout=120.0)
        second.join(timeout=30.0)
        assert not master.is_alive()
        if "error" in result:
            raise result["error"]
        assert result["report"].counters.trees_completed == 1

    def test_host_id_fallback_refuses_shm_peering(self, monkeypatch):
        """Without a readable machine id (common in containers, which
        also share baked-in hostnames) the default host id must be
        process-unique: a false host match ships shm descriptors that
        cannot attach cross-host, wedging the run, so no machine id
        means no implicit shm peering.  ``--host-id`` opts back in."""
        from repro.runtime import socket as socket_backend

        class _Unreadable:
            def __init__(self, *_args):
                pass

            def read_text(self):
                raise OSError("no machine-id here")

        monkeypatch.setattr(socket_backend, "Path", _Unreadable)
        expected = f"{socket_module.gethostname()}/pid{os.getpid()}"
        assert socket_backend._default_host_id() == expected

        class _Empty(_Unreadable):
            def read_text(self):
                return "\n"

        monkeypatch.setattr(socket_backend, "Path", _Empty)
        assert socket_backend._default_host_id() == expected

    def test_non_loopback_listen_warns_about_trust_boundary(self):
        table = _table("covtype")
        options = _options(
            listen=f"0.0.0.0:{_free_port()}", rendezvous_timeout_seconds=0.3
        )
        with pytest.warns(RuntimeWarning, match="non-loopback"):
            with pytest.raises(HandshakeError, match="missing workers"):
                _fit(
                    "socket",
                    table,
                    [random_forest_job("rf", 1, TreeConfig(max_depth=4))],
                    n_workers=1,
                    options=options,
                )

    def test_rendezvous_timeout_is_a_clear_error(self):
        table = _table("covtype")
        port = _free_port()
        options = _options(
            listen=f"127.0.0.1:{port}", rendezvous_timeout_seconds=0.5
        )
        with pytest.raises(HandshakeError, match=r"missing workers \[1, 2\]"):
            _fit(
                "socket",
                table,
                [random_forest_job("rf", 1, TreeConfig(max_depth=4))],
                n_workers=2,
                options=options,
            )
        # The failed rendezvous released the port.
        with socket_module.socket() as probe:
            probe.bind(("127.0.0.1", port))
        assert multiprocessing.active_children() == []
        assert _repro_segments() == []

    def test_worker_side_handshake_errors(self):
        table = _table("covtype")
        # Nobody listening: a connection error, not a hang.
        with pytest.raises(OSError):
            connect_worker(("127.0.0.1", _free_port()), 1, table)
        # A listener that never answers: HandshakeError after the timeout.
        with socket_module.create_server(("127.0.0.1", 0)) as silent:
            address = silent.getsockname()[:2]
            with pytest.raises(HandshakeError, match="no welcome"):
                connect_worker(address, 1, table, handshake_timeout=0.5)

    def test_parse_address_validation(self):
        assert parse_address("10.0.0.7:7733") == ("10.0.0.7", 7733)
        for bad in ("localhost", "host:", ":123", "host:-1", "host:70000", ""):
            with pytest.raises(ValueError, match="host:port"):
                parse_address(bad)

    def test_handshake_frames_are_json_never_unpickled(self):
        """Control frames arrive before any peer has proven anything, so
        they must be a non-executable encoding: the wire payload is
        plain JSON, a *pickled* hello is rejected instead of loaded,
        and badly-typed fields never reach validation code."""
        import json
        import pickle

        from repro.core.tasks import WorkerHelloMsg, WorkerWelcomeMsg
        from repro.runtime.socket import _decode_ctrl, _send_ctrl

        left, right = socket_module.socketpair()
        a, b = FrameStream(left), FrameStream(right)
        try:
            hello = WorkerHelloMsg(
                worker_id=1,
                protocol_version=SOCKET_PROTOCOL_VERSION,
                table_hash="ab" * 32,
                host_id="host-a",
                pid=123,
            )
            _send_ctrl(a, hello)
            dst, payload = b.read_frame(timeout=5.0)
            assert dst == CTRL_DST
            decoded = json.loads(payload)  # the payload IS json
            assert decoded["body"]["worker_id"] == 1
            assert _decode_ctrl(payload, WorkerHelloMsg) == hello
            # A pickled hello — the old wire format — is turned away.
            assert _decode_ctrl(pickle.dumps(hello), WorkerHelloMsg) is None
            # Wrong kind, wrong types, junk: all rejected, none raise.
            assert _decode_ctrl(payload, WorkerWelcomeMsg) is None
            bad_type = dict(decoded, body=dict(decoded["body"], worker_id="1"))
            assert (
                _decode_ctrl(json.dumps(bad_type).encode(), WorkerHelloMsg)
                is None
            )
            assert _decode_ctrl(b"\x80\x05garbage", WorkerHelloMsg) is None
        finally:
            a.close()
            b.close()

    def test_welcome_round_trips_cost_model_exactly(self):
        """The welcome carries the CostModel as JSON; bit-identical
        training across hosts needs it to round-trip exactly."""
        from repro.cluster.cost import CostModel
        from repro.core.tasks import WorkerWelcomeMsg
        from repro.runtime.socket import _read_ctrl, _send_ctrl

        left, right = socket_module.socketpair()
        a, b = FrameStream(left), FrameStream(right)
        try:
            sent = WorkerWelcomeMsg(
                ok=True,
                n_workers=3,
                held_columns=(2, 5, 7),
                host_map={0: "m", 1: "h-a", 2: "h-a", 3: "h-b"},
                shm_prefix="repro-x",
                shm_threshold_bytes=4096,
                coalesce_max_messages=16,
                poll_interval_seconds=0.02,
                cost=CostModel(ops_per_second=31.7e6, latency_seconds=3e-4),
            )
            _send_ctrl(a, sent)
            got = _read_ctrl(b, 5.0, WorkerWelcomeMsg)
            assert got == sent
            assert got.host_map == {0: "m", 1: "h-a", 2: "h-a", 3: "h-b"}
        finally:
            a.close()
            b.close()


# ----------------------------------------------------------------------
# frame layer
# ----------------------------------------------------------------------
class TestFrameStream:
    def _pair(self):
        a, b = socket_module.socketpair()
        return FrameStream(a), FrameStream(b)

    def test_frames_preserve_order_and_boundaries(self):
        left, right = self._pair()
        try:
            payloads = [bytes([i]) * (i * 7 + 1) for i in range(64)]
            for i, payload in enumerate(payloads):
                left.send_frame(i, payload)
            for i, expected in enumerate(payloads):
                frame = right.read_frame(timeout=5.0)
                assert frame == (i, expected)
        finally:
            left.close()
            right.close()

    def test_clean_eof_on_frame_boundary(self):
        left, right = self._pair()
        left.send_frame(0, b"done")
        left.close()
        assert right.read_frame(timeout=5.0) == (0, b"done")
        with pytest.raises(ConnectionClosed) as info:
            right.read_frame(timeout=5.0)
        assert info.value.clean
        right.close()

    def test_dirty_eof_mid_frame(self):
        left, right = self._pair()
        # A header promising more bytes than ever arrive.
        left.sock.sendall(b"\x00\x00\x00\x01\x00\x00\x00\x00\x00\x00\x00\xff")
        left.close()
        with pytest.raises(ConnectionClosed) as info:
            right.read_frame(timeout=5.0)
        assert not info.value.clean
        right.close()

    def test_poll_timeout_returns_none_and_resumes(self):
        left, right = self._pair()
        try:
            assert right.read_frame(timeout=0.05) is None
            left.send_frame(3, b"late")
            assert right.read_frame(timeout=5.0) == (3, b"late")
        finally:
            left.close()
            right.close()

    def test_poll_timeout_never_arms_a_send_timeout(self):
        """Read polling must not leave the socket in timeout mode: a
        ``sendall`` under a ~50ms poll timeout can partially write a
        frame (stream desync) and drop protocol messages.  After any
        poll-timeout read the socket stays fully blocking, and a frame
        much larger than the socket buffer still sends completely."""
        left, right = self._pair()
        try:
            assert left.read_frame(timeout=0.05) is None
            assert left.sock.gettimeout() is None  # blocking, not 0.05
            # Far beyond any kernel socket buffer: a timed-out sendall
            # would truncate this; a blocking one cannot.
            payload = os.urandom(8 << 20)
            received = {}

            def consume():
                received["frame"] = right.read_frame(timeout=30.0)

            reader = threading.Thread(target=consume, daemon=True)
            reader.start()
            left.send_frame(1, payload)
            reader.join(timeout=30.0)
            assert received["frame"] == (1, payload)
        finally:
            left.close()
            right.close()

    def test_absurd_length_is_treated_as_corruption(self):
        left, right = self._pair()
        try:
            import struct

            left.sock.sendall(struct.pack("!iQ", 0, 1 << 50))
            with pytest.raises(ConnectionClosed):
                right.read_frame(timeout=5.0)
        finally:
            left.close()
            right.close()


# ----------------------------------------------------------------------
# failure semantics and recovery
# ----------------------------------------------------------------------
class TestRecovery:
    JOBS = [random_forest_job("rf", 4, TreeConfig(max_depth=7), seed=3)]

    @pytest.mark.parametrize("use_shm", [True, False], ids=["shm", "queues"])
    def test_killed_worker_recovers_bit_identical(self, use_shm):
        """Losing 1 of 3 workers (k=2 replication) mid-run still matches
        the undisturbed sim model."""
        table = _table()
        reference = _fit("sim", table, self.JOBS).trees("rf")
        report = _fit(
            "socket",
            table,
            self.JOBS,
            options=_options(
                fault_policy="recover",
                use_shm=use_shm,
                crash_worker_after=(2, 6),
            ),
        )
        assert_bit_identical(reference, report.trees("rf"))
        transport = report.cluster.transport
        assert transport["recovered_workers"] == 1
        assert report.counters.recovered_workers == 1
        assert 2 not in transport["per_worker"]
        assert multiprocessing.active_children() == []
        assert _repro_segments() == []

    def test_fail_fast_surfaces_real_exitcode(self):
        """Self-launch mode keeps subprocess exit codes: the injected
        crash arrives as exitcode 71, not a generic EOF."""
        from repro.runtime.process import CRASH_EXITCODE

        table = _table()
        options = _options(
            message_timeout_seconds=10.0, crash_worker_after=(1, 2)
        )
        with pytest.raises(WorkerDiedError) as info:
            _fit("socket", table, self.JOBS, options=options)
        assert info.value.worker_id == 1
        assert info.value.exitcode == CRASH_EXITCODE
        assert multiprocessing.active_children() == []
        assert _repro_segments() == []


# ----------------------------------------------------------------------
# factory and CLI
# ----------------------------------------------------------------------
class TestFactoryAndCli:
    def test_create_runtime_dispatch(self):
        system = _system(2)
        cost = TreeServer(system).cost
        runtime = create_runtime("socket", system, cost)
        assert isinstance(runtime, SocketRuntime)
        # The whole mp driver loop is inherited, only the transport swaps.
        assert isinstance(runtime, ProcessRuntime)

    def test_cli_train_socket_backend(self, tmp_path):
        """`repro train --backend socket` end to end, identical to sim."""
        from repro.cli import main
        from repro.data.io import write_csv

        table = _table("covtype")
        csv = tmp_path / "data.csv"
        write_csv(table, csv)
        for backend, out_dir in (("socket", "m_sock"), ("sim", "m_sim")):
            code = main(
                [
                    "train", "--csv", str(csv), "--target", "label",
                    "--model-dir", str(tmp_path / out_dir), "--forest", "2",
                    "--workers", "2", "--max-depth", "6",
                    "--backend", backend,
                ],
                out=io.StringIO(),
            )
            assert code == 0
        for name in ("tree_0.json", "tree_1.json"):
            assert (tmp_path / "m_sock" / name).read_text() == (
                tmp_path / "m_sim" / name
            ).read_text()
        assert _repro_segments() == []

    def test_cli_flag_combinations_validated(self, tmp_path, capsys):
        from repro.cli import main
        from repro.data.io import write_csv

        table = _table("covtype")
        csv = tmp_path / "data.csv"
        write_csv(table, csv)
        base = [
            "train", "--csv", str(csv), "--target", "label",
            "--model-dir", str(tmp_path / "m"),
        ]
        assert main(base + ["--listen", "127.0.0.1:0"], out=io.StringIO()) == 2
        assert "--backend socket" in capsys.readouterr().err
        assert (
            main(
                base + ["--backend", "socket", "--hosts", "a,b"],
                out=io.StringIO(),
            )
            == 2
        )
        assert "--listen" in capsys.readouterr().err
