"""Direct tests of DESIGN.md's numbered invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.network import Network
from repro.core import (
    SystemConfig,
    TreeConfig,
    TreeServer,
    decision_tree_job,
    random_forest_job,
    train_tree,
)
from repro.core.impurity import Impurity, classification_impurity
from repro.core.splits import best_numeric_split, route_training_rows
from repro.data.schema import ColumnKind
from repro.datasets import SyntheticSpec, generate


@pytest.fixture(scope="module")
def table():
    return generate(
        SyntheticSpec(
            name="inv", n_rows=600, n_numeric=4, n_categorical=2,
            n_classes=3, planted_depth=4, noise=0.1, seed=77,
        )
    )


class TestInvariantThree:
    """Weighted child impurity never exceeds the parent's for chosen splits."""

    def test_every_internal_node(self, table):
        tree = train_tree(table, TreeConfig(max_depth=8))
        ids = np.arange(table.n_rows, dtype=np.int64)
        stack = [(tree.root, ids)]
        while stack:
            node, rows = stack.pop()
            if node.is_leaf:
                continue
            y = table.target[rows]
            counts = np.bincount(
                y.astype(np.int64), minlength=table.n_classes
            ).astype(float)
            parent = classification_impurity(counts, Impurity.GINI)
            assert node.split.score < parent + 1e-12
            go_left = route_training_rows(
                table.column(node.split.column)[rows], node.split
            )
            stack.append((node.left, rows[go_left]))
            stack.append((node.right, rows[~go_left]))

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=6),
                st.integers(min_value=0, max_value=2),
            ),
            min_size=2,
            max_size=40,
        )
    )
    def test_property_split_never_increases_impurity(self, pairs):
        values = np.array([float(v) for v, _ in pairs])
        y = np.array([c for _, c in pairs])
        split = best_numeric_split(0, values, y, Impurity.GINI, 3)
        if split is None:
            return
        counts = np.bincount(y, minlength=3).astype(float)
        parent = classification_impurity(counts, Impurity.GINI)
        assert split.score <= parent + 1e-9


class TestInvariantFive:
    """Section V: no master-originated message carries a row-id array."""

    def test_master_payloads_have_no_arrays(self, table, monkeypatch):
        master_payload_types: set[str] = set()
        offending: list[str] = []
        original_send = Network.send

        def spying_send(self, src, dst, kind, payload, size_bytes):
            if src == 0 and payload is not None:
                master_payload_types.add(type(payload).__name__)
                for name, value in vars(payload).items():
                    if isinstance(value, np.ndarray) and value.size > 16:
                        offending.append(f"{kind}.{name}")
            return original_send(self, src, dst, kind, payload, size_bytes)

        monkeypatch.setattr(Network, "send", spying_send)
        system = SystemConfig(n_workers=4, compers_per_worker=2).scaled_to(
            table.n_rows
        )
        TreeServer(system).fit(
            table, [random_forest_job("rf", 3, TreeConfig(max_depth=6), seed=2)]
        )
        assert not offending
        assert "ColumnPlanMsg" in master_payload_types  # the spy saw traffic


class TestInvariantSeven:
    """Simulator determinism and message conservation (end to end)."""

    def test_two_runs_identical_event_streams(self, table):
        system = SystemConfig(n_workers=3, compers_per_worker=2).scaled_to(
            table.n_rows
        )
        job = decision_tree_job("dt", TreeConfig(max_depth=6))
        a = TreeServer(system).fit(table, [job])
        b = TreeServer(system).fit(table, [job])
        assert a.cluster.events_processed == b.cluster.events_processed
        assert a.cluster.bytes_by_kind == b.cluster.bytes_by_kind
        assert a.sim_seconds == b.sim_seconds


class TestInvariantNinePredictionStops:
    """Appendix D: missing/unseen values stop descent with a sane PMF."""

    def test_all_missing_row(self, table):
        tree = train_tree(table, TreeConfig(max_depth=6))
        row = []
        for spec in table.schema.columns:
            row.append(np.nan if spec.kind is ColumnKind.NUMERIC else -1)
        pmf = tree.predict_row(row)
        np.testing.assert_allclose(pmf, tree.root.prediction)
