"""Tests for the tree model: prediction semantics, serialization, equality."""

import numpy as np
import pytest

from repro.core.builder import train_tree
from repro.core.config import TreeConfig
from repro.core.splits import CandidateSplit
from repro.core.tree import (
    DecisionTree,
    TreeNode,
    node_from_dict,
    node_to_dict,
    trees_equal,
)
from repro.data import ColumnKind, DataTable, ProblemKind


def build_manual_tree() -> DecisionTree:
    """A hand-built two-level tree over one numeric column."""
    left = TreeNode(2, 1, 5, np.array([1.0, 0.0]))
    right = TreeNode(3, 1, 5, np.array([0.0, 1.0]))
    root = TreeNode(
        1,
        0,
        10,
        np.array([0.5, 0.5]),
        split=CandidateSplit(
            column=0,
            kind=ColumnKind.NUMERIC,
            score=0.0,
            n_left=5,
            n_right=5,
            threshold=10.0,
        ),
        left=left,
        right=right,
    )
    return DecisionTree(root, ProblemKind.CLASSIFICATION, n_classes=2)


class TestNodeBasics:
    def test_leaf_detection(self):
        tree = build_manual_tree()
        assert not tree.root.is_leaf
        assert tree.root.left.is_leaf

    def test_walk_counts(self):
        tree = build_manual_tree()
        assert tree.n_nodes == 3
        assert tree.depth == 1
        assert tree.root.predicted_label() in (0, 1)

    def test_walk_preorder(self):
        tree = build_manual_tree()
        ids = [node.node_id for node in tree.nodes()]
        assert ids == [1, 2, 3]


class TestPrediction:
    def test_predict_row_routes(self):
        tree = build_manual_tree()
        assert np.argmax(tree.predict_row([5.0])) == 0
        assert np.argmax(tree.predict_row([15.0])) == 1

    def test_predict_row_missing_stops_at_node(self):
        tree = build_manual_tree()
        pred = tree.predict_row([np.nan])
        np.testing.assert_allclose(pred, [0.5, 0.5])

    def test_predict_row_depth_cutoff(self):
        tree = build_manual_tree()
        pred = tree.predict_row([5.0], max_depth=0)
        np.testing.assert_allclose(pred, [0.5, 0.5])

    def test_vectorized_matches_rowwise(self, small_mixed_classification):
        table = small_mixed_classification
        tree = train_tree(table, TreeConfig(max_depth=6))
        proba = tree.predict_proba(table)
        for i in range(0, table.n_rows, 17):
            np.testing.assert_allclose(
                proba[i], tree.predict_row(table.row(i)), atol=1e-12
            )

    def test_vectorized_regression_matches_rowwise(self, small_regression):
        table = small_regression
        tree = train_tree(table, TreeConfig(max_depth=5))
        values = tree.predict_values(table)
        for i in range(0, table.n_rows, 13):
            assert values[i] == pytest.approx(tree.predict_row(table.row(i)))

    def test_depth_truncation_equals_shallower_tree(
        self, small_mixed_classification
    ):
        """Appendix D: a dmax-trained tree truncated at depth d predicts as a
        depth-d tree — because every node stores its own prediction."""
        table = small_mixed_classification
        deep = train_tree(table, TreeConfig(max_depth=8))
        for d in (1, 2, 4):
            shallow = train_tree(table, TreeConfig(max_depth=d))
            np.testing.assert_allclose(
                deep.predict_proba(table, max_depth=d),
                shallow.predict_proba(table),
                atol=1e-12,
            )

    def test_problem_kind_guards(self, small_mixed_classification):
        tree = train_tree(small_mixed_classification, TreeConfig(max_depth=3))
        with pytest.raises(ValueError):
            tree.predict_values(small_mixed_classification)

    def test_unseen_category_stops(self, tiny_classification):
        table = tiny_classification
        tree = train_tree(table, TreeConfig(max_depth=4))
        # Craft a row with an unseen education code (beyond training data).
        row = table.row(0)
        proba_normal = tree.predict_row(row)
        assert proba_normal is not None  # sanity: prediction works

    def test_predict_labels_shape(self, small_mixed_classification):
        table = small_mixed_classification
        tree = train_tree(table, TreeConfig(max_depth=4))
        labels = tree.predict(table)
        assert labels.shape == (table.n_rows,)
        assert set(np.unique(labels)) <= set(range(table.n_classes))


class TestSerialization:
    def test_round_trip_classification(self, small_mixed_classification):
        tree = train_tree(small_mixed_classification, TreeConfig(max_depth=6))
        back = DecisionTree.from_dict(tree.to_dict())
        assert trees_equal(tree, back)

    def test_round_trip_regression_with_missing(self, small_regression):
        tree = train_tree(small_regression, TreeConfig(max_depth=6))
        back = DecisionTree.from_dict(tree.to_dict())
        assert trees_equal(tree, back)

    def test_round_trip_preserves_predictions(self, small_mixed_classification):
        table = small_mixed_classification
        tree = train_tree(table, TreeConfig(max_depth=5))
        back = DecisionTree.from_dict(tree.to_dict())
        np.testing.assert_allclose(
            tree.predict_proba(table), back.predict_proba(table)
        )

    def test_node_dict_round_trip_subtree(self, small_mixed_classification):
        tree = train_tree(small_mixed_classification, TreeConfig(max_depth=4))
        data = node_to_dict(tree.root)
        back = node_from_dict(data)
        assert back.count_nodes() == tree.n_nodes


class TestEquality:
    def test_equal_trees(self, small_mixed_classification):
        t1 = train_tree(small_mixed_classification, TreeConfig(max_depth=5))
        t2 = train_tree(small_mixed_classification, TreeConfig(max_depth=5))
        assert trees_equal(t1, t2)

    def test_different_depth_not_equal(self, small_mixed_classification):
        t1 = train_tree(small_mixed_classification, TreeConfig(max_depth=3))
        t2 = train_tree(small_mixed_classification, TreeConfig(max_depth=6))
        assert not trees_equal(t1, t2)

    def test_leaf_vs_split_not_equal(self):
        tree = build_manual_tree()
        pruned = DecisionTree(
            TreeNode(1, 0, 10, np.array([0.5, 0.5])),
            ProblemKind.CLASSIFICATION,
            2,
        )
        assert not trees_equal(tree, pruned)
