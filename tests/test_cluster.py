"""Tests for the discrete-event cluster substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    CostModel,
    CrashPlan,
    FaultInjector,
    Machine,
    Network,
    SimulatedCluster,
    SimulationEngine,
    SimulationError,
)


class TestSimulationEngine:
    def test_events_fire_in_time_order(self):
        engine = SimulationEngine()
        order = []
        engine.schedule(2.0, lambda: order.append("b"))
        engine.schedule(1.0, lambda: order.append("a"))
        engine.schedule(3.0, lambda: order.append("c"))
        engine.run()
        assert order == ["a", "b", "c"]
        assert engine.now == 3.0

    def test_equal_times_fire_in_insertion_order(self):
        engine = SimulationEngine()
        order = []
        for tag in "abc":
            engine.schedule(1.0, lambda t=tag: order.append(t))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_callbacks_can_schedule(self):
        engine = SimulationEngine()
        seen = []

        def first():
            seen.append(engine.now)
            engine.schedule(0.5, lambda: seen.append(engine.now))

        engine.schedule(1.0, first)
        engine.run()
        assert seen == [1.0, 1.5]

    def test_negative_delay_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            engine.schedule(-1.0, lambda: None)

    def test_schedule_into_past_rejected(self):
        engine = SimulationEngine()
        engine.schedule(5.0, lambda: engine.schedule_at(1.0, lambda: None))
        with pytest.raises(SimulationError):
            engine.run()

    def test_cancellation(self):
        engine = SimulationEngine()
        fired = []
        handle = engine.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        engine.run()
        assert not fired

    def test_event_budget_guard(self):
        engine = SimulationEngine()

        def loop():
            engine.schedule(1.0, loop)

        engine.schedule(0.0, loop)
        with pytest.raises(SimulationError, match="budget"):
            engine.run(max_events=100)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=100), max_size=30))
    def test_causality_property(self, delays):
        """Observed firing times are sorted regardless of insertion order."""
        engine = SimulationEngine()
        fired = []
        for d in delays:
            engine.schedule(d, lambda: fired.append(engine.now))
        engine.run()
        assert fired == sorted(fired)


class TestNetwork:
    def _make(self, n=3, bw=100.0, lat=0.0):
        engine = SimulationEngine()
        net = Network(engine, n, bandwidth_bytes_per_second=bw, latency_seconds=lat)
        inbox = []
        net.on_deliver(lambda m: inbox.append(m))
        return engine, net, inbox

    def test_delivery_and_serialization_time(self):
        engine, net, inbox = self._make(bw=100.0, lat=0.5)
        t = net.send(0, 1, "k", "hello", size_bytes=200)
        assert t == pytest.approx(200 / 100.0 + 0.5)
        engine.run()
        assert len(inbox) == 1
        assert inbox[0].payload == "hello"

    def test_sender_fifo_backlog(self):
        engine, net, inbox = self._make(bw=100.0, lat=0.0)
        t1 = net.send(0, 1, "k", 1, size_bytes=100)
        t2 = net.send(0, 2, "k", 2, size_bytes=100)
        assert t1 == pytest.approx(1.0)
        assert t2 == pytest.approx(2.0)  # serialized after the first
        engine.run()
        assert [m.payload for m in inbox] == [1, 2]

    def test_local_send_is_free(self):
        engine, net, inbox = self._make(bw=1.0, lat=10.0)
        t = net.send(1, 1, "k", "x", size_bytes=10**9)
        assert t == 0.0
        assert net.bytes_sent[1] == 0
        engine.run()
        assert len(inbox) == 1

    def test_byte_accounting(self):
        engine, net, _ = self._make()
        net.send(0, 1, "a", None, 100)
        net.send(0, 2, "b", None, 50)
        assert net.bytes_sent[0] == 150
        assert net.bytes_received[1] == 100
        assert net.bytes_by_kind == {"a": 100, "b": 50}

    def test_dead_destination_drops(self):
        engine, net, inbox = self._make()
        net.mark_dead(1)
        net.send(0, 1, "k", None, 10)
        engine.run()
        assert not inbox
        assert net.messages_dropped == 1

    def test_dead_source_raises(self):
        from repro.cluster import DeadMachineError

        engine, net, _ = self._make()
        net.mark_dead(0)
        with pytest.raises(DeadMachineError):
            net.send(0, 1, "k", None, 10)

    def test_message_conservation(self):
        """sent == delivered + dropped (no loss, no duplication)."""
        engine, net, inbox = self._make(n=4)
        rng = np.random.default_rng(0)
        sent = 0
        for _ in range(50):
            src, dst = rng.integers(0, 4, size=2)
            if src != dst:
                net.send(int(src), int(dst), "k", None, int(rng.integers(1, 100)))
                sent += 1
        engine.run()
        assert len(inbox) + net.messages_dropped == sent


class TestMachine:
    def test_single_core_serializes(self):
        engine = SimulationEngine()
        machine = Machine(engine, 0, n_cores=1, ops_per_second=10.0)
        done = []
        machine.execute(10, lambda: done.append(engine.now))
        machine.execute(10, lambda: done.append(engine.now))
        engine.run()
        assert done == [1.0, 2.0]

    def test_multi_core_parallel(self):
        engine = SimulationEngine()
        machine = Machine(engine, 0, n_cores=2, ops_per_second=10.0)
        done = []
        machine.execute(10, lambda: done.append(engine.now))
        machine.execute(10, lambda: done.append(engine.now))
        machine.execute(10, lambda: done.append(engine.now))
        engine.run()
        assert done == [1.0, 1.0, 2.0]

    def test_busy_time_and_utilization(self):
        engine = SimulationEngine()
        machine = Machine(engine, 0, n_cores=2, ops_per_second=10.0)
        machine.execute(20, lambda: None)
        engine.run()
        assert machine.stats.busy_core_seconds == pytest.approx(2.0)
        assert machine.utilization(2.0) == pytest.approx(0.5)

    def test_memory_accounting(self):
        engine = SimulationEngine()
        machine = Machine(engine, 0, 1, 10.0)
        machine.alloc(100)
        machine.alloc(50)
        assert machine.stats.mem_task_peak == 150
        machine.free(100)
        assert machine.stats.mem_task_bytes == 50
        with pytest.raises(RuntimeError):
            machine.free(51)

    def test_halt_discards_queue(self):
        engine = SimulationEngine()
        machine = Machine(engine, 0, 1, 10.0)
        done = []
        machine.execute(10, lambda: done.append("a"))
        machine.execute(10, lambda: done.append("b"))
        machine.halt()
        engine.run()
        assert done == []  # in-flight callback suppressed too

    def test_ops_by_label(self):
        engine = SimulationEngine()
        machine = Machine(engine, 0, 1, 10.0)
        machine.execute(5, lambda: None, label="x")
        machine.execute(7, lambda: None, label="x")
        engine.run()
        assert machine.stats.ops_by_label["x"] == 12


class TestCostModel:
    def test_split_ops_monotone(self):
        cost = CostModel()
        assert cost.split_search_ops(100) < cost.split_search_ops(10_000)

    def test_subtree_ops_scale_with_columns(self):
        cost = CostModel()
        assert cost.subtree_build_ops(100, 10) == pytest.approx(
            10 * cost.subtree_build_ops(100, 1)
        )

    def test_byte_sizes_include_overhead(self):
        cost = CostModel()
        assert cost.row_ids_bytes(0) == cost.control_bytes
        assert cost.row_ids_bytes(10) == cost.control_bytes + 80
        assert cost.column_data_bytes(10, 3) == cost.control_bytes + 240

    def test_conversions(self):
        cost = CostModel(ops_per_second=100.0, bandwidth_bytes_per_second=50.0)
        assert cost.compute_seconds(200) == pytest.approx(2.0)
        assert cost.transfer_seconds(100) == pytest.approx(2.0)


class TestSimulatedCluster:
    def test_actor_dispatch(self):
        cluster = SimulatedCluster(n_workers=2, compers_per_worker=1)
        seen = []

        class Echo:
            def handle_message(self, message):
                seen.append((message.dst, message.payload))

        cluster.register(1, Echo())
        cluster.register(2, Echo())
        cluster.send(0, 1, "k", "a", 10)
        cluster.send(0, 2, "k", "b", 10)
        report = cluster.run()
        assert sorted(seen) == [(1, "a"), (2, "b")]
        assert report.elapsed_seconds > 0

    def test_unregistered_actor_raises(self):
        cluster = SimulatedCluster(n_workers=1, compers_per_worker=1)
        cluster.send(0, 1, "k", None, 1)
        with pytest.raises(RuntimeError, match="no actor"):
            cluster.run()

    def test_master_has_one_core(self):
        cluster = SimulatedCluster(n_workers=3, compers_per_worker=8)
        assert cluster.machines[0].n_cores == 1
        assert all(m.n_cores == 8 for m in cluster.machines[1:])


class TestFaultInjector:
    def test_crash_halts_and_notifies(self):
        cluster = SimulatedCluster(n_workers=2, compers_per_worker=1)
        detected = []
        injector = FaultInjector(
            cluster.engine, cluster.machines, cluster.network, detection_delay=0.1
        )
        injector.on_failure_detected(detected.append)

        class Sink:
            def handle_message(self, message):
                pass

        cluster.register(1, Sink())
        cluster.register(2, Sink())
        injector.schedule_crash(CrashPlan(machine_id=1, at_time=1.0))
        cluster.run()
        assert detected == [1]
        assert cluster.machines[1].halted
        assert cluster.network.is_dead(1)
