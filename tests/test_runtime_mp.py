"""The multiprocess runtime: parity, robustness, shutdown hygiene.

The headline guarantee: ``TreeServer(..., backend="mp")`` — real worker
processes exchanging pickled protocol messages over queues — trains a
forest **bit-identical** to the deterministic simulator on the same
table, config and seed.  Split arbitration is ``min (score, column)``
and all per-node randomness derives from ``(tree seed, node path)``, so
scheduling nondeterminism (which replica computes which column, message
arrival order) must never leak into the model.

The robustness edges the simulator cannot exercise are pinned here too:
a worker process hard-killed mid-run surfaces as a structured
:class:`WorkerDiedError` within the configured timeout (never a hang),
worker-side exceptions ship their traceback home, and the process pool
is always drained and joined — on success and on failure.
"""

from __future__ import annotations

import io
import multiprocessing
import os
import pickle
import queue as queue_module
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro import (
    SystemConfig,
    TreeConfig,
    TreeServer,
    decision_tree_job,
    extra_trees_job,
    random_forest_job,
    trees_equal,
)
from repro.datasets import dataset_spec, generate
from repro.runtime import (
    ProcessRuntime,
    RuntimeOptions,
    SimRuntime,
    WorkerDiedError,
    create_runtime,
)
from repro.runtime.base import MessageTimeoutError, RuntimeBackendError

#: CI runs this suite twice — REPRO_MP_SHM=1 and =0 — so the whole parity
#: and robustness surface is exercised with and without the shared-memory
#: data plane; locally the default (shm on) applies.
SHM_DEFAULT = os.environ.get("REPRO_MP_SHM", "1").lower() not in (
    "0", "off", "false",
)


def _options(**kw) -> RuntimeOptions:
    kw.setdefault("message_timeout_seconds", 15.0)
    kw.setdefault("poll_interval_seconds", 0.02)
    kw.setdefault("use_shm", SHM_DEFAULT)
    return RuntimeOptions(**kw)


#: Tight-but-safe timeout: failure tests must finish fast, CI must not flake.
FAST = _options()


def _table(name="higgs_boson"):
    return generate(dataset_spec(name, small=True))


def _system(n_workers=3, **kw):
    table_rows = kw.pop("table_rows", 700)
    return SystemConfig(
        n_workers=n_workers, compers_per_worker=2, **kw
    ).scaled_to(table_rows)


def _fit(backend, table, jobs, n_workers=3, **kw):
    server = TreeServer(
        _system(n_workers, table_rows=table.n_rows),
        backend=backend,
        runtime_options=FAST,
    )
    return server.fit(table, jobs, **kw)


def assert_bit_identical(sim_trees, mp_trees):
    """Trees must match structurally *and* in serialized form."""
    assert len(sim_trees) == len(mp_trees)
    for a, b in zip(sim_trees, mp_trees):
        assert trees_equal(a, b)
        assert a.to_dict() == b.to_dict()


# ----------------------------------------------------------------------
# parity
# ----------------------------------------------------------------------
class TestParity:
    def test_random_forest_bit_identical(self):
        table = _table()
        jobs = [random_forest_job("rf", 4, TreeConfig(max_depth=8), seed=5)]
        sim = _fit("sim", table, jobs)
        mp = _fit("mp", table, jobs)
        assert_bit_identical(sim.trees("rf"), mp.trees("rf"))
        assert mp.backend == "mp" and sim.backend == "sim"
        assert mp.wall_seconds > 0

    def test_extra_trees_and_bootstrap_bit_identical(self):
        """Seeded randomness (thresholds, bootstraps) replays identically."""
        table = _table("covtype")
        jobs = [
            extra_trees_job("xt", 3, TreeConfig(max_depth=6), seed=11),
            random_forest_job(
                "rf", 2, TreeConfig(max_depth=6), seed=2, bootstrap_rows=True
            ),
        ]
        sim = _fit("sim", table, jobs)
        mp = _fit("mp", table, jobs)
        assert_bit_identical(sim.trees("xt"), mp.trees("xt"))
        assert_bit_identical(sim.trees("rf"), mp.trees("rf"))

    def test_regression_single_tree_bit_identical(self):
        table = _table("allstate")
        jobs = [
            decision_tree_job(
                "dt", TreeConfig(max_depth=7, min_impurity_decrease=1e-9)
            )
        ]
        sim = _fit("sim", table, jobs)
        mp = _fit("mp", table, jobs)
        assert_bit_identical(sim.trees("dt"), mp.trees("dt"))

    def test_parity_across_worker_counts(self):
        """The model is a function of the data and seed, not the cluster."""
        table = _table("covtype")
        jobs = [random_forest_job("rf", 3, TreeConfig(max_depth=6), seed=9)]
        reference = _fit("sim", table, jobs).trees("rf")
        for n_workers in (1, 2, 4):
            got = _fit("mp", table, jobs, n_workers=n_workers).trees("rf")
            assert_bit_identical(reference, got)


# ----------------------------------------------------------------------
# training-kernel seam
# ----------------------------------------------------------------------
class TestTrainingKernel:
    def test_vectorized_mp_matches_scalar_serial(self, monkeypatch):
        """End-to-end kernel parity: an mp run under the vectorized kernel
        produces the exact model of a scalar-kernel sim run."""
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        table = _table("covtype")
        jobs = [
            random_forest_job("rf", 3, TreeConfig(max_depth=8), seed=5),
            decision_tree_job("dt", TreeConfig(max_depth=None)),
        ]

        def fit(backend, kernel):
            server = TreeServer(
                _system(3, table_rows=table.n_rows),
                backend=backend,
                runtime_options=_options(kernel=kernel),
            )
            return server.fit(table, jobs)

        scalar = fit("sim", "scalar")
        vec = fit("mp", "vectorized")
        assert_bit_identical(scalar.trees("rf"), vec.trees("rf"))
        assert_bit_identical(scalar.trees("dt"), vec.trees("dt"))
        transport = vec.cluster.transport
        assert transport["kernel"] == "vectorized"
        assert transport["subtree_nodes_built"] > 0
        assert transport["subtree_kernel_s"] > 0
        for counters in transport["per_worker"].values():
            assert counters["subtree_kernel_s"] >= 0

    def test_kernel_override_reaches_workers(self, monkeypatch):
        """RuntimeOptions.kernel rewrites every job's tree configs."""
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        table = _table("covtype")
        jobs = [random_forest_job("rf", 2, TreeConfig(max_depth=6), seed=1)]
        report = _fit_with(table, jobs, _options(kernel="scalar"), n_workers=2)
        assert report.cluster.transport["kernel"] == "scalar"

    def test_invalid_kernel_option_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            _options(kernel="turbo")


# ----------------------------------------------------------------------
# smoke / reporting
# ----------------------------------------------------------------------
class TestReporting:
    def test_report_counters_and_metrics(self):
        table = _table("covtype")
        jobs = [random_forest_job("rf", 3, TreeConfig(max_depth=6), seed=1)]
        report = _fit("mp", table, jobs, n_workers=2)
        assert report.counters.trees_completed == 3
        assert report.counters.plans_dispatched > 0
        # Every machine reported in; the data plane actually moved bytes.
        assert len(report.cluster.machines) == 3
        assert report.cluster.total_bytes > 0
        assert report.cluster.bytes_by_kind.get("column_plan", 0) > 0
        assert report.sim_seconds == report.wall_seconds

    def test_no_orphan_processes_after_fit(self):
        table = _table("covtype")
        _fit("mp", table, [decision_tree_job("dt", TreeConfig(max_depth=5))])
        assert multiprocessing.active_children() == []

    def test_models_pickle_identically(self):
        """The mp-trained model is the same *bytes* once persisted."""
        table = _table("covtype")
        jobs = [decision_tree_job("dt", TreeConfig(max_depth=6))]
        sim_tree = _fit("sim", table, jobs).tree("dt")
        mp_tree = _fit("mp", table, jobs).tree("dt")
        assert pickle.dumps(sim_tree.to_dict()) == pickle.dumps(
            mp_tree.to_dict()
        )


# ----------------------------------------------------------------------
# failure semantics
# ----------------------------------------------------------------------
class TestFailures:
    def test_killed_worker_raises_structured_error(self):
        """A hard-killed worker surfaces as WorkerDiedError, not a hang."""
        table = _table()
        options = _options(
            message_timeout_seconds=10.0,
            crash_worker_after=(1, 2),  # worker 1 dies after 2 messages
        )
        server = TreeServer(
            _system(2, table_rows=table.n_rows),
            backend="mp",
            runtime_options=options,
        )
        with pytest.raises(WorkerDiedError) as info:
            server.fit(
                table, [random_forest_job("rf", 4, TreeConfig(max_depth=8))]
            )
        assert info.value.worker_id == 1
        assert isinstance(info.value, RuntimeBackendError)
        # The pool was reaped on the error path too.
        assert multiprocessing.active_children() == []

    def test_worker_exception_ships_traceback(self):
        """A worker-side protocol error reaches the driver with its stack."""
        from repro.core.load_balance import assign_columns_to_workers
        from repro.core.tasks import MSG_ROW_REQUEST, RowRequestMsg, WorkerErrorMsg
        from repro.runtime.process import ProcessTransport

        table = _table("covtype")
        system = _system(2, table_rows=table.n_rows)
        placement = assign_columns_to_workers(table.n_columns, [1, 2], 2)
        transport = ProcessTransport(
            2, table, placement, TreeServer(system).cost, FAST
        )
        try:
            # A row_request for a task the worker never planned makes the
            # unmodified actor raise ProtocolError inside the child.
            transport.send(
                0, 1, MSG_ROW_REQUEST,
                RowRequestMsg(
                    parent_task=(99, 1), side=0, requester=2,
                    tag=("column", (99, 2)),
                ),
                0,
            )
            payload = None
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                try:
                    payload = transport.recv_master(0.05).payload
                    break
                except queue_module.Empty:
                    continue
            assert isinstance(payload, WorkerErrorMsg)
            assert payload.worker == 1
            assert "ProtocolError" in payload.error
            assert "Traceback" in payload.traceback
        finally:
            transport.shutdown()
        assert multiprocessing.active_children() == []

    def test_sim_only_features_rejected(self):
        table = _table("covtype")
        server = TreeServer(_system(2), backend="mp", runtime_options=FAST)
        with pytest.raises(ValueError, match="sim backend"):
            server.fit(
                table,
                [decision_tree_job("dt")],
                secondary_master=True,
            )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            TreeServer(backend="ray")
        with pytest.raises(ValueError, match="unknown backend"):
            create_runtime("ray", _system(2), TreeServer(_system(2)).cost)

    def test_timeout_error_message_names_progress(self):
        error = MessageTimeoutError(2.5, "task results (1/4 trees done)")
        assert "2.5s" in str(error)
        assert "1/4 trees" in str(error)


# ----------------------------------------------------------------------
# shared-memory data plane
# ----------------------------------------------------------------------
def _fit_with(table, jobs, options, n_workers=3):
    server = TreeServer(
        _system(n_workers, table_rows=table.n_rows),
        backend="mp",
        runtime_options=options,
    )
    return server.fit(table, jobs)


def _repro_segments():
    from repro.data.shared import list_segments

    return list_segments()


class TestSharedMemoryDataPlane:
    def test_parity_shm_on_and_off(self):
        """One model, three substrates: sim, mp+shm, mp queues-only."""
        table = _table("covtype")
        jobs = [random_forest_job("rf", 3, TreeConfig(max_depth=6), seed=9)]
        reference = _fit("sim", table, jobs).trees("rf")
        for use_shm in (True, False):
            got = _fit_with(table, jobs, _options(use_shm=use_shm)).trees("rf")
            assert_bit_identical(reference, got)
        assert _repro_segments() == []

    def test_parity_under_spawn(self):
        """spawn is first-class: handle-based startup, identical model."""
        if "spawn" not in multiprocessing.get_all_start_methods():
            pytest.skip("spawn start method not available")
        table = _table("covtype")
        jobs = [random_forest_job("rf", 2, TreeConfig(max_depth=6), seed=3)]
        reference = _fit("sim", table, jobs).trees("rf")
        got = _fit_with(
            table, jobs, _options(start_method="spawn"), n_workers=2
        ).trees("rf")
        assert_bit_identical(reference, got)
        assert _repro_segments() == []

    def test_invalid_start_method_is_a_clear_error(self):
        from repro.runtime import resolve_start_method

        with pytest.raises(ValueError, match="not available"):
            resolve_start_method("bogus-method")
        table = _table("covtype")
        server = TreeServer(
            _system(2, table_rows=table.n_rows),
            backend="mp",
            runtime_options=_options(start_method="bogus-method"),
        )
        with pytest.raises(ValueError, match="not available"):
            server.fit(table, [decision_tree_job("dt", TreeConfig(max_depth=4))])
        assert _repro_segments() == []

    def test_transport_counters_reported(self):
        """worker_stats carry the data-plane counters into the report."""
        table = _table("covtype")
        jobs = [random_forest_job("rf", 2, TreeConfig(max_depth=6), seed=1)]
        report = _fit_with(table, jobs, _options(use_shm=True), n_workers=2)
        transport = report.cluster.transport
        assert transport["shm"] is True
        assert transport["start_method"] in multiprocessing.get_all_start_methods()
        assert transport["messages_sent"] > 0
        assert transport["bytes_pickled"] > 0
        assert transport["shm_bytes_mapped"] > 0  # the mapped table at least
        assert set(transport["per_worker"]) == {1, 2}
        for counters in transport["per_worker"].values():
            assert counters["messages_sent"] > 0
            assert counters["bytes_pickled"] > 0
        off = _fit_with(table, jobs, _options(use_shm=False), n_workers=2)
        assert off.cluster.transport["shm"] is False
        assert off.cluster.transport["shm_bytes_mapped"] == 0

    def test_no_segments_leaked_after_success(self):
        table = _table("covtype")
        _fit_with(
            table,
            [decision_tree_job("dt", TreeConfig(max_depth=6))],
            _options(use_shm=True),
        )
        assert _repro_segments() == []

    def test_no_segments_leaked_after_worker_death(self):
        """The parent sweep reclaims what a hard-killed worker left behind."""
        table = _table()
        options = _options(
            message_timeout_seconds=10.0,
            use_shm=True,
            crash_worker_after=(1, 2),
        )
        with pytest.raises(WorkerDiedError):
            _fit_with(
                table,
                [random_forest_job("rf", 4, TreeConfig(max_depth=8))],
                options,
                n_workers=2,
            )
        assert _repro_segments() == []
        assert multiprocessing.active_children() == []

    def test_no_segments_leaked_after_sigint(self, tmp_path):
        """Ctrl-C mid-run: the finally-path shutdown still sweeps /dev/shm."""
        script = tmp_path / "train_forever.py"
        script.write_text(textwrap.dedent("""
            from repro import SystemConfig, TreeConfig, TreeServer
            from repro import random_forest_job
            from repro.datasets import dataset_spec, generate
            from repro.runtime import RuntimeOptions

            table = generate(dataset_spec("higgs_boson", small=True))
            server = TreeServer(
                SystemConfig(
                    n_workers=2, compers_per_worker=2
                ).scaled_to(table.n_rows),
                backend="mp",
                runtime_options=RuntimeOptions(use_shm=True),
            )
            print("STARTED", flush=True)
            try:
                server.fit(table, [
                    random_forest_job(
                        "rf", 500, TreeConfig(max_depth=10), seed=1
                    ),
                ])
                print("COMPLETED", flush=True)
            except KeyboardInterrupt:
                print("INTERRUPTED", flush=True)
        """))
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        process = subprocess.Popen(
            [sys.executable, str(script)],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            assert process.stdout.readline().strip() == "STARTED"
            time.sleep(0.75)  # let training get properly in flight
            process.send_signal(signal.SIGINT)
            output, _ = process.communicate(timeout=60.0)
        finally:
            if process.poll() is None:  # pragma: no cover - wedged child
                process.kill()
                process.communicate()
        assert "INTERRUPTED" in output or "COMPLETED" in output, output
        assert _repro_segments() == []


# ----------------------------------------------------------------------
# crash recovery (fault_policy="recover")
# ----------------------------------------------------------------------
class TestCrashRecovery:
    """Losing 1 of 3 workers mid-train (k=2 replication) must complete
    with models bit-identical to an undisturbed sim run."""

    JOBS_SEED = 3

    def _jobs(self):
        return [
            random_forest_job(
                "rf", 4, TreeConfig(max_depth=7), seed=self.JOBS_SEED
            )
        ]

    @pytest.mark.parametrize("use_shm", [True, False], ids=["shm", "queues"])
    def test_recovers_and_stays_bit_identical(self, use_shm, monkeypatch):
        table = _table()
        jobs = self._jobs()
        reference = _fit("sim", table, jobs).trees("rf")
        # Fault injection through the env hook, as CI uses it.
        monkeypatch.setenv("REPRO_MP_KILL", "2:6")
        report = _fit_with(
            table,
            jobs,
            _options(fault_policy="recover", use_shm=use_shm),
        )
        assert_bit_identical(reference, report.trees("rf"))
        transport = report.cluster.transport
        assert transport["fault_policy"] == "recover"
        assert transport["recovered_workers"] == 1
        assert report.counters.recovered_workers == 1
        # The dead worker neither reports stats nor lingers as a process.
        assert 2 not in transport["per_worker"]
        assert set(transport["per_worker"]) == {1, 3}
        for counters in transport["per_worker"].values():
            assert counters["revoked_trees_seen"] == report.counters.revoked_trees
        assert multiprocessing.active_children() == []
        assert _repro_segments() == []

    def test_explicit_option_beats_env_hook(self, monkeypatch):
        """RuntimeOptions.crash_worker_after wins over REPRO_MP_KILL."""
        table = _table()
        monkeypatch.setenv("REPRO_MP_KILL", "1:1")
        report = _fit_with(
            table,
            self._jobs(),
            # An impossible-to-reach crash point: the run finishes first.
            _options(
                fault_policy="recover", crash_worker_after=(1, 10**9)
            ),
        )
        assert report.counters.recovered_workers == 0

    def test_kill_env_spec_validation(self):
        from repro.runtime.process import parse_kill_spec

        assert parse_kill_spec("2:20") == (2, 20)
        for bad in ("2", "a:b", "2:0", "0:5", "1:2:3", ""):
            with pytest.raises(ValueError, match="REPRO_MP_KILL"):
                parse_kill_spec(bad)

    def test_fail_fast_policy_preserves_structured_error(self):
        table = _table()
        options = _options(
            message_timeout_seconds=10.0,
            fault_policy="fail_fast",
            crash_worker_after=(2, 6),
        )
        with pytest.raises(WorkerDiedError) as info:
            _fit_with(table, self._jobs(), options)
        assert info.value.worker_id == 2
        assert multiprocessing.active_children() == []
        assert _repro_segments() == []

    def test_unsurvivable_crash_degrades_to_structured_error(self):
        """replication=1: the dead worker's columns have no replica."""
        table = _table()
        server = TreeServer(
            SystemConfig(
                n_workers=3, compers_per_worker=2, column_replication=1
            ).scaled_to(table.n_rows),
            backend="mp",
            runtime_options=_options(
                message_timeout_seconds=10.0,
                fault_policy="recover",
                crash_worker_after=(2, 6),
            ),
        )
        with pytest.raises(WorkerDiedError, match="no surviving replica"):
            server.fit(table, self._jobs())
        assert multiprocessing.active_children() == []
        assert _repro_segments() == []

    def test_max_worker_failures_exhausted(self):
        table = _table()
        options = _options(
            message_timeout_seconds=10.0,
            fault_policy="recover",
            max_worker_failures=0,
            crash_worker_after=(2, 6),
        )
        with pytest.raises(WorkerDiedError, match="max_worker_failures"):
            _fit_with(table, self._jobs(), options)
        assert multiprocessing.active_children() == []
        assert _repro_segments() == []

    def test_invalid_fault_policy_rejected(self):
        with pytest.raises(ValueError, match="fault_policy"):
            RuntimeOptions(fault_policy="retry-forever")
        with pytest.raises(ValueError, match="max_worker_failures"):
            RuntimeOptions(max_worker_failures=-1)

    def test_runtime_options_reject_nonsense_values(self):
        """Bad knob values fail at construction, not as a mid-run hang."""
        with pytest.raises(ValueError, match="coalesce_max_messages"):
            RuntimeOptions(coalesce_max_messages=0)
        with pytest.raises(ValueError, match="shm_threshold_bytes"):
            RuntimeOptions(shm_threshold_bytes=-1)
        with pytest.raises(ValueError, match="message_timeout_seconds"):
            RuntimeOptions(message_timeout_seconds=0.0)
        with pytest.raises(ValueError, match="poll_interval_seconds"):
            RuntimeOptions(poll_interval_seconds=-0.5)
        with pytest.raises(ValueError, match="rendezvous_timeout_seconds"):
            RuntimeOptions(rendezvous_timeout_seconds=0.0)
        with pytest.raises(ValueError, match="crash_worker_after"):
            RuntimeOptions(crash_worker_after=(1, -2))
        with pytest.raises(ValueError, match="raise_worker_after"):
            RuntimeOptions(raise_worker_after=(-1, 2))
        # Worker ids start at 1 and counts are 1-based (matching
        # parse_kill_spec) — a 0 entry would silently inject nothing.
        with pytest.raises(ValueError, match="crash_worker_after"):
            RuntimeOptions(crash_worker_after=(0, 5))
        with pytest.raises(ValueError, match="raise_worker_after"):
            RuntimeOptions(raise_worker_after=(2, 0))
        with pytest.raises(ValueError, match="crash_worker_after"):
            RuntimeOptions(crash_worker_after=(1.0, 5))  # ints only
        # Boundary values stay legal.
        RuntimeOptions(
            coalesce_max_messages=1,
            shm_threshold_bytes=0,
            crash_worker_after=(1, 1),
            raise_worker_after=(1, 1),
        )

    @pytest.mark.parametrize("via_env", [False, True], ids=["option", "env"])
    def test_worker_exception_recovers_like_a_crash(self, via_env, monkeypatch):
        """A worker-side logic error under fault_policy="recover" routes
        through the same reassignment/revocation path as a hard kill —
        the run completes bit-identical to the undisturbed sim model."""
        table = _table()
        jobs = self._jobs()
        reference = _fit("sim", table, jobs).trees("rf")
        monkeypatch.delenv("REPRO_MP_RAISE", raising=False)
        if via_env:
            monkeypatch.setenv("REPRO_MP_RAISE", "2:6")
            options = _options(fault_policy="recover")
        else:
            options = _options(
                fault_policy="recover", raise_worker_after=(2, 6)
            )
        report = _fit_with(table, jobs, options)
        assert_bit_identical(reference, report.trees("rf"))
        assert report.counters.recovered_workers == 1
        assert report.cluster.transport["recovered_workers"] == 1
        assert 2 not in report.cluster.transport["per_worker"]
        assert multiprocessing.active_children() == []
        assert _repro_segments() == []

    def test_worker_exception_fail_fast_carries_detail(self):
        """Under fail_fast a worker_error is a WorkerDiedError too — never
        a silent continuation — and it carries the remote traceback."""
        table = _table()
        options = _options(
            message_timeout_seconds=10.0,
            fault_policy="fail_fast",
            raise_worker_after=(2, 6),
        )
        with pytest.raises(WorkerDiedError) as info:
            _fit_with(table, self._jobs(), options)
        assert info.value.worker_id == 2
        assert "injected worker logic error" in str(info.value)
        assert "Traceback" in str(info.value)
        assert multiprocessing.active_children() == []
        assert _repro_segments() == []

    def test_raise_env_spec_validation(self):
        from repro.runtime.process import RAISE_ENV, parse_kill_spec

        assert parse_kill_spec("3:7", RAISE_ENV) == (3, 7)
        with pytest.raises(ValueError, match="REPRO_MP_RAISE"):
            parse_kill_spec("nope", RAISE_ENV)

    def test_cli_recover_trains_same_model_as_sim(self, tmp_path, monkeypatch):
        """`repro train --backend mp --fault-policy recover` under the
        REPRO_MP_KILL hook completes and matches the sim model bytes."""
        from repro.cli import main
        from repro.data.io import write_csv

        table = _table("covtype")
        csv = tmp_path / "data.csv"
        write_csv(table, csv)
        base = [
            "train", "--csv", str(csv), "--target", "label",
            "--forest", "2", "--workers", "3", "--max-depth", "6",
        ]
        monkeypatch.delenv("REPRO_MP_KILL", raising=False)
        code = main(
            base + ["--model-dir", str(tmp_path / "m_sim"), "--backend", "sim"],
            out=io.StringIO(),
        )
        assert code == 0
        monkeypatch.setenv("REPRO_MP_KILL", "2:6")
        out = io.StringIO()
        code = main(
            base + [
                "--model-dir", str(tmp_path / "m_mp"), "--backend", "mp",
                "--fault-policy", "recover",
            ],
            out=out,
        )
        assert code == 0
        assert "recovered-workers=1" in out.getvalue()
        for name in ("tree_0.json", "tree_1.json"):
            assert (tmp_path / "m_mp" / name).read_text() == (
                tmp_path / "m_sim" / name
            ).read_text()
        assert _repro_segments() == []

    def test_cli_fail_fast_prints_one_line_error(self, tmp_path, monkeypatch, capsys):
        """Default mp policy: child crash surfaces as a structured
        one-line error and exit code 1 — not a raw traceback."""
        from repro.cli import main
        from repro.data.io import write_csv

        table = _table("covtype")
        csv = tmp_path / "data.csv"
        write_csv(table, csv)
        monkeypatch.setenv("REPRO_MP_KILL", "2:6")
        code = main(
            [
                "train", "--csv", str(csv), "--target", "label",
                "--model-dir", str(tmp_path / "m"), "--forest", "2",
                "--workers", "3", "--max-depth", "6", "--backend", "mp",
                "--mp-timeout", "10",
            ],
            out=io.StringIO(),
        )
        assert code == 1
        stderr = capsys.readouterr().err
        lines = [line for line in stderr.splitlines() if line.strip()]
        assert len(lines) == 1
        assert "worker 2 died" in lines[0]
        assert "exitcode=71" in lines[0]
        assert "fault-policy=fail_fast" in lines[0]
        assert "--fault-policy recover" in lines[0]
        assert multiprocessing.active_children() == []
        assert _repro_segments() == []


# ----------------------------------------------------------------------
# runtime factory
# ----------------------------------------------------------------------
class TestFactory:
    def test_create_runtime_dispatch(self):
        system = _system(2)
        cost = TreeServer(system).cost
        assert isinstance(create_runtime("sim", system, cost), SimRuntime)
        assert isinstance(create_runtime("mp", system, cost), ProcessRuntime)

    def test_cli_train_mp_backend(self, tmp_path):
        """`repro train --backend mp` end to end, identical to sim."""
        from repro.cli import main
        from repro.data.io import write_csv

        table = _table("covtype")
        csv = tmp_path / "data.csv"
        write_csv(table, csv)
        for backend, out_dir in (("mp", "m_mp"), ("sim", "m_sim")):
            code = main(
                [
                    "train", "--csv", str(csv), "--target", "label",
                    "--model-dir", str(tmp_path / out_dir), "--forest", "2",
                    "--workers", "2", "--max-depth", "6",
                    "--backend", backend,
                ],
                out=io.StringIO(),
            )
            assert code == 0
        for name in ("tree_0.json", "tree_1.json"):
            assert (tmp_path / "m_mp" / name).read_text() == (
                tmp_path / "m_sim" / name
            ).read_text()
