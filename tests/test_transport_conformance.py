"""Transport-seam conformance: one contract, three substrates.

The :class:`~repro.runtime.base.Transport` protocol makes exactly three
promises the TreeServer event loops rely on:

* **per-sender FIFO per destination** — the extra-trees retry path
  (``task_delete`` immediately followed by a fresh ``column_plan`` to
  the same worker) breaks if a later send can overtake an earlier one;
* **flush-on-idle delivery** — sends may be coalesced, but everything
  buffered must be on its way once the sender goes idle (an explicit
  ``flush``, or the implicit one in ``recv_master``), never held until
  some unrelated later event;
* **idempotent close** — teardown paths run ``close`` from both success
  and failure branches, sometimes twice.

This suite runs the same assertions over all three implementations:
``SimTransport`` (discrete-event network), ``ProcessTransport``
(multiprocessing queues) and ``SocketTransport`` (framed TCP, loopback
self-launch).  A new backend earns its seat by passing this file.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time

import pytest

from repro import SystemConfig, TreeServer
from repro.cluster.network import Message
from repro.cluster.topology import SimulatedCluster
from repro.core.load_balance import assign_columns_to_workers
from repro.datasets import dataset_spec, generate
from repro.runtime import RuntimeOptions
from repro.runtime.sim import SimTransport

#: Kind tag of the probe messages; never a real protocol kind.
PROBE = "conformance_probe"


class _Harness:
    """Uniform view of one transport for the contract assertions."""

    def __init__(self, transport, deliver, close):
        self.transport = transport
        self._deliver = deliver
        self.close = close

    def send(self, payload) -> None:
        self.transport.send(0, self.destination, PROBE, payload, 8)

    def delivered(self, count: int) -> list:
        """Payloads observed at the destination, in arrival order."""
        return self._deliver(count)

    destination = 0


class _SimHarness(_Harness):
    destination = 1

    def __init__(self):
        system = SystemConfig(n_workers=2, compers_per_worker=1)
        cluster = SimulatedCluster(
            n_workers=2, compers_per_worker=1, cost=TreeServer(system).cost
        )
        self.received: list[Message] = []
        recorder = self

        class _Recorder:
            def handle_message(self, message: Message) -> None:
                recorder.received.append(message)

        cluster.register(1, _Recorder())
        transport = SimTransport(cluster)

        def deliver(count: int) -> list:
            cluster.run()  # drain the event queue
            return [m.payload for m in self.received]

        super().__init__(transport, deliver, transport.close)


class _QueueHarness(_Harness):
    """mp / socket: probes addressed to the master land in recv_master.

    ``recv_master`` flushes the fabric before blocking — the flush-on-idle
    rule — so no explicit ``flush`` call is needed for delivery.
    """

    def __init__(self, transport):
        def deliver(count: int) -> list:
            got = []
            deadline = time.monotonic() + 15.0
            while len(got) < count and time.monotonic() < deadline:
                try:
                    message = transport.recv_master(0.1)
                except queue_module.Empty:
                    continue
                assert message.kind == PROBE
                got.append(message.payload)
            return got

        super().__init__(transport, deliver, transport.close)


def _real_transport(cls):
    table = generate(dataset_spec("covtype", small=True))
    placement = assign_columns_to_workers(table.n_columns, [1], 1)
    system = SystemConfig(n_workers=1, compers_per_worker=1)
    options = RuntimeOptions(
        message_timeout_seconds=15.0, poll_interval_seconds=0.02, use_shm=False
    )
    return cls(1, table, placement, TreeServer(system).cost, options)


def _make_harness(backend: str) -> _Harness:
    if backend == "sim":
        return _SimHarness()
    if backend == "mp":
        from repro.runtime.process import ProcessTransport

        return _QueueHarness(_real_transport(ProcessTransport))
    from repro.runtime.socket import SocketTransport

    return _QueueHarness(_real_transport(SocketTransport))


@pytest.fixture(params=["sim", "mp", "socket"])
def harness(request):
    h = _make_harness(request.param)
    try:
        yield h
    finally:
        h.close()
        assert multiprocessing.active_children() == []


class TestTransportContract:
    def test_per_sender_fifo(self, harness):
        """64 probes from one sender arrive in send order — more than the
        coalescing cap, so order must survive batch boundaries too."""
        count = 64
        for i in range(count):
            harness.send(i)
        harness.transport.flush()
        assert harness.delivered(count) == list(range(count))

    def test_flush_on_idle_delivers_buffered_sends(self, harness):
        """No explicit flush: going idle (the receive path) suffices."""
        for i in range(3):
            harness.send(("idle", i))
        assert harness.delivered(3) == [("idle", i) for i in range(3)]

    def test_close_is_idempotent(self, harness):
        harness.send("pre-close")
        harness.transport.flush()
        harness.close()
        harness.close()  # second close must be a no-op, not an error
