"""Tests for the serial exact builder: leaf rules, invariants, extra-trees."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import (
    bootstrap_row_ids,
    build_subtree,
    extra_tree_column_order,
    node_rng,
    path_depth,
    sample_candidate_columns,
    train_tree,
)
from repro.core.config import ColumnSampling, TreeConfig, TreeKind
from repro.core.impurity import Impurity
from repro.core.tree import trees_equal
from repro.data import ProblemKind
from repro.datasets import SyntheticSpec, generate


class TestPathHelpers:
    def test_path_depth(self):
        assert path_depth(1) == 0
        assert path_depth(2) == 1
        assert path_depth(3) == 1
        assert path_depth(4) == 2
        assert path_depth(7) == 2

    @given(st.integers(min_value=1, max_value=2**40))
    def test_children_one_deeper(self, path):
        assert path_depth(2 * path) == path_depth(path) + 1
        assert path_depth(2 * path + 1) == path_depth(path) + 1

    def test_node_rng_deterministic(self):
        a = node_rng(7, 13).random()
        b = node_rng(7, 13).random()
        c = node_rng(7, 14).random()
        assert a == b
        assert a != c


class TestCandidateColumns:
    def test_all_sampling(self):
        cfg = TreeConfig(column_sampling=ColumnSampling.ALL)
        assert sample_candidate_columns(cfg, 10) == tuple(range(10))

    def test_sqrt_sampling_size(self):
        cfg = TreeConfig(column_sampling=ColumnSampling.SQRT, seed=3)
        cols = sample_candidate_columns(cfg, 100)
        assert len(cols) == 10
        assert cols == tuple(sorted(cols))
        assert all(0 <= c < 100 for c in cols)

    def test_ratio_sampling_size(self):
        cfg = TreeConfig(
            column_sampling=ColumnSampling.RATIO, column_ratio=0.4, seed=1
        )
        assert len(sample_candidate_columns(cfg, 50)) == 20

    def test_different_seeds_differ(self):
        base = TreeConfig(column_sampling=ColumnSampling.SQRT)
        a = sample_candidate_columns(base.with_seed(1), 400)
        b = sample_candidate_columns(base.with_seed(2), 400)
        assert a != b

    def test_bootstrap_deterministic_and_sorted(self):
        a = bootstrap_row_ids(5, 100)
        b = bootstrap_row_ids(5, 100)
        np.testing.assert_array_equal(a, b)
        assert len(a) == 100
        assert (np.diff(a) >= 0).all()


class TestLeafRules:
    def test_pure_node_is_leaf(self, small_mixed_classification):
        table = small_mixed_classification
        tree = train_tree(table, TreeConfig(max_depth=20))
        for node in tree.nodes():
            if not node.is_leaf:
                # Internal nodes must be impure (pure nodes stop splitting).
                assert float(np.max(node.prediction)) < 1.0

    def test_max_depth_respected(self, small_mixed_classification):
        for dmax in (1, 3, 5):
            tree = train_tree(small_mixed_classification, TreeConfig(max_depth=dmax))
            assert tree.depth <= dmax

    def test_tau_leaf_respected(self, small_mixed_classification):
        tree = train_tree(
            small_mixed_classification, TreeConfig(max_depth=30, tau_leaf=20)
        )
        for node in tree.nodes():
            if not node.is_leaf:
                assert node.n_rows > 20

    def test_unbounded_depth(self, small_mixed_classification):
        tree = train_tree(small_mixed_classification, TreeConfig(max_depth=None))
        # With tau_leaf=1 every leaf is pure or unsplittable.
        for node in tree.nodes():
            if node.is_leaf and node.n_rows > 1:
                pass  # unsplittable leaves are allowed (no useful split)
        assert tree.n_nodes >= 3


class TestStructuralInvariants:
    def test_children_partition_rows(self, small_mixed_classification):
        tree = train_tree(small_mixed_classification, TreeConfig(max_depth=8))
        for node in tree.nodes():
            if not node.is_leaf:
                assert node.left.n_rows + node.right.n_rows == node.n_rows
                assert node.left.n_rows > 0 and node.right.n_rows > 0

    def test_heap_path_ids(self, small_mixed_classification):
        tree = train_tree(small_mixed_classification, TreeConfig(max_depth=6))
        for node in tree.nodes():
            assert node.depth == path_depth(node.node_id)
            if not node.is_leaf:
                assert node.left.node_id == 2 * node.node_id
                assert node.right.node_id == 2 * node.node_id + 1

    def test_pmf_sums_to_one(self, small_mixed_classification):
        tree = train_tree(small_mixed_classification, TreeConfig(max_depth=6))
        for node in tree.nodes():
            assert float(np.sum(node.prediction)) == pytest.approx(1.0)

    def test_determinism(self, small_mixed_classification):
        t1 = train_tree(small_mixed_classification, TreeConfig(max_depth=7))
        t2 = train_tree(small_mixed_classification, TreeConfig(max_depth=7))
        assert trees_equal(t1, t2)

    def test_regression_tree_with_missing(self, small_regression):
        tree = train_tree(small_regression, TreeConfig(max_depth=6))
        assert tree.problem is ProblemKind.REGRESSION
        for node in tree.nodes():
            assert isinstance(node.prediction, float)

    def test_entropy_criterion(self, small_mixed_classification):
        tree = train_tree(
            small_mixed_classification,
            TreeConfig(max_depth=5, criterion=Impurity.ENTROPY),
        )
        assert tree.n_nodes >= 3

    def test_training_accuracy_high_on_separable(self):
        table = generate(
            SyntheticSpec(
                name="clean",
                n_rows=400,
                n_numeric=5,
                n_categorical=0,
                n_classes=2,
                planted_depth=3,
                noise=0.0,
                seed=11,
            )
        )
        tree = train_tree(table, TreeConfig(max_depth=10))
        acc = (tree.predict(table) == table.target).mean()
        assert acc >= 0.99


class TestSubtreeBuilding:
    def test_subtree_on_row_subset(self, small_mixed_classification):
        table = small_mixed_classification
        ids = np.arange(0, table.n_rows, 2, dtype=np.int64)
        root = build_subtree(table, TreeConfig(max_depth=4), ids, root_path=5)
        assert root.node_id == 5
        assert root.depth == path_depth(5)
        assert root.n_rows == len(ids)

    def test_subtree_respects_remaining_depth(self, small_mixed_classification):
        table = small_mixed_classification
        ids = np.arange(table.n_rows, dtype=np.int64)
        # Root at path 4 has depth 2; dmax 4 leaves two more levels.
        root = build_subtree(table, TreeConfig(max_depth=4), ids, root_path=4)
        assert root.subtree_depth() <= 4

    def test_candidate_columns_restrict_splits(self, small_mixed_classification):
        table = small_mixed_classification
        ids = np.arange(table.n_rows, dtype=np.int64)
        root = build_subtree(
            table, TreeConfig(max_depth=6), ids, candidate_columns=(0, 2)
        )
        for node in root.walk():
            if node.split is not None:
                assert node.split.column in (0, 2)


class TestExtraTrees:
    def test_extra_tree_builds(self, small_mixed_classification):
        cfg = TreeConfig(max_depth=8, tree_kind=TreeKind.EXTRA, seed=3)
        tree = train_tree(small_mixed_classification, cfg)
        assert tree.n_nodes >= 3

    def test_extra_tree_deterministic_in_seed(self, small_mixed_classification):
        cfg = TreeConfig(max_depth=6, tree_kind=TreeKind.EXTRA, seed=4)
        t1 = train_tree(small_mixed_classification, cfg)
        t2 = train_tree(small_mixed_classification, cfg)
        assert trees_equal(t1, t2)

    def test_extra_tree_seeds_differ(self, small_mixed_classification):
        cfg = TreeConfig(max_depth=6, tree_kind=TreeKind.EXTRA)
        t1 = train_tree(small_mixed_classification, cfg.with_seed(1))
        t2 = train_tree(small_mixed_classification, cfg.with_seed(2))
        assert not trees_equal(t1, t2)

    def test_column_order_deterministic(self):
        cols = tuple(range(8))
        assert extra_tree_column_order(1, 5, cols) == extra_tree_column_order(
            1, 5, cols
        )
        assert set(extra_tree_column_order(1, 5, cols)) == set(cols)

    def test_extra_tree_splits_without_gain_requirement(self):
        """Extra-trees split on any valid random condition, even zero-gain."""
        table = generate(
            SyntheticSpec(
                name="noise",
                n_rows=200,
                n_numeric=3,
                n_categorical=0,
                n_classes=2,
                planted_depth=1,
                noise=0.5,
                seed=12,
            )
        )
        cfg = TreeConfig(max_depth=6, tree_kind=TreeKind.EXTRA, seed=1)
        tree = train_tree(table, cfg)
        assert tree.depth >= 2


class TestBootstrapTraining:
    def test_bootstrap_changes_tree(self, small_mixed_classification):
        table = small_mixed_classification
        plain = train_tree(table, TreeConfig(max_depth=6))
        boot = train_tree(
            table,
            TreeConfig(max_depth=6),
            row_ids=bootstrap_row_ids(0, table.n_rows),
        )
        assert not trees_equal(plain, boot)
        assert boot.root.n_rows == table.n_rows  # bootstrap keeps n rows


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_any_seeded_dataset_trains(seed):
    """Training never crashes and invariants hold on random small tables."""
    spec = SyntheticSpec(
        name="prop",
        n_rows=60,
        n_numeric=2,
        n_categorical=1,
        n_classes=2,
        planted_depth=3,
        noise=0.2,
        missing_rate=0.1,
        seed=seed,
    )
    table = generate(spec)
    tree = train_tree(table, TreeConfig(max_depth=5))
    assert tree.depth <= 5
    for node in tree.nodes():
        if not node.is_leaf:
            assert node.left.n_rows + node.right.n_rows == node.n_rows
    labels = tree.predict(table)
    assert labels.shape == (60,)


# ----------------------------------------------------------------------
# scalar vs vectorized kernel parity (repro.core.kernel)
# ----------------------------------------------------------------------
def _parity_table(problem=ProblemKind.CLASSIFICATION, missing=0.1, seed=9):
    return generate(
        SyntheticSpec(
            name="kparity",
            problem=problem,
            n_rows=500,
            n_numeric=4,
            n_categorical=2,
            n_classes=3 if problem is ProblemKind.CLASSIFICATION else 2,
            planted_depth=4,
            noise=0.25,
            missing_rate=missing,
            seed=seed,
        )
    )


def assert_kernels_bit_identical(table, config, row_ids=None):
    """Scalar and vectorized builds must serialize to identical dicts."""
    from dataclasses import replace

    scalar = train_tree(table, replace(config, kernel="scalar"), row_ids=row_ids)
    vec = train_tree(table, replace(config, kernel="vectorized"), row_ids=row_ids)
    assert trees_equal(scalar, vec)
    assert scalar.to_dict() == vec.to_dict()
    return scalar


class TestKernelParity:
    """The vectorized kernel is bit-identical to the scalar builder.

    This is the exactness invariant extended to the kernel seam: the
    level-synchronous builder must reproduce heap paths, RNG draws, and
    every tie-break of the scalar path across the whole configuration
    matrix.
    """

    @pytest.mark.parametrize("criterion", [Impurity.GINI, Impurity.ENTROPY])
    @pytest.mark.parametrize("missing", [0.0, 0.15])
    def test_classification_decision(self, criterion, missing):
        table = _parity_table(missing=missing)
        assert_kernels_bit_identical(
            table, TreeConfig(max_depth=None, criterion=criterion, seed=3)
        )

    @pytest.mark.parametrize("missing", [0.0, 0.15])
    def test_regression_decision(self, missing):
        table = _parity_table(problem=ProblemKind.REGRESSION, missing=missing)
        assert_kernels_bit_identical(
            table,
            TreeConfig(max_depth=None, criterion=Impurity.VARIANCE, seed=4),
        )

    @pytest.mark.parametrize(
        "problem", [ProblemKind.CLASSIFICATION, ProblemKind.REGRESSION]
    )
    def test_extra_trees(self, problem):
        table = _parity_table(problem=problem)
        assert_kernels_bit_identical(
            table,
            TreeConfig(max_depth=None, tree_kind=TreeKind.EXTRA, seed=7),
        )

    def test_bootstrap_rows(self):
        table = _parity_table()
        rows = bootstrap_row_ids(21, table.n_rows)
        assert_kernels_bit_identical(
            table, TreeConfig(max_depth=None, seed=21), row_ids=rows
        )

    @pytest.mark.parametrize(
        "config",
        [
            TreeConfig(max_depth=0),
            TreeConfig(max_depth=1),
            TreeConfig(max_depth=None, tau_leaf=50),
            TreeConfig(max_depth=None, min_impurity_decrease=0.5),
            TreeConfig(
                max_depth=6, column_sampling=ColumnSampling.SQRT, seed=2
            ),
        ],
        ids=["depth0", "depth1", "tau-leaf-50", "high-gain-bar", "sqrt-cols"],
    )
    def test_edge_configs(self, config):
        assert_kernels_bit_identical(_parity_table(), config)

    @pytest.mark.parametrize("cutoff", [0, 3, 1_000_000])
    def test_depth_next_cutoff_is_exact(self, cutoff):
        """Any small-node cutoff only moves work between identical paths."""
        from repro.core.kernel import build_subtree_vectorized

        table = _parity_table()
        cfg = TreeConfig(max_depth=None, seed=5)
        rows = np.arange(table.n_rows, dtype=np.int64)
        scalar = build_subtree(table, cfg, rows)
        vec = build_subtree_vectorized(
            table, cfg, rows, small_node_cutoff=cutoff
        )
        from repro.core.tree import node_to_dict

        assert node_to_dict(scalar) == node_to_dict(vec)

    def test_env_override_wins(self, monkeypatch):
        from repro.core.kernel import KernelCounters, build_subtree_auto

        table = _parity_table()
        rows = np.arange(table.n_rows, dtype=np.int64)
        counters = KernelCounters()
        monkeypatch.setenv("REPRO_KERNEL", "scalar")
        build_subtree_auto(
            table, TreeConfig(max_depth=4), rows, counters=counters
        )
        assert counters.kernel == "scalar"
        assert counters.build_s > 0

    def test_env_override_validated(self, monkeypatch):
        from repro.core.kernel import resolve_kernel

        monkeypatch.setenv("REPRO_KERNEL", "turbo")
        with pytest.raises(ValueError, match="REPRO_KERNEL"):
            resolve_kernel(TreeConfig())

    def test_config_rejects_unknown_kernel(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            TreeConfig(kernel="turbo")

    def test_counters_accumulate(self):
        from repro.core.kernel import KernelCounters, build_subtree_auto

        table = _parity_table()
        rows = np.arange(table.n_rows, dtype=np.int64)
        counters = KernelCounters()
        build_subtree_auto(
            table, TreeConfig(max_depth=None), rows, counters=counters
        )
        assert counters.kernel == "vectorized"
        assert counters.build_s > 0
        assert 0 <= counters.gather_s <= counters.build_s
