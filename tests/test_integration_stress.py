"""Integration stress tests: mixed workloads through the full stack."""

import numpy as np
import pytest

from repro.cluster import CrashPlan
from repro.core import (
    SystemConfig,
    TreeConfig,
    TreeServer,
    decision_tree_job,
    extra_trees_job,
    random_forest_job,
    staged_job,
    train_tree,
    trees_equal,
)
from repro.core.builder import bootstrap_row_ids
from repro.datasets import SyntheticSpec, generate


@pytest.fixture(scope="module")
def table():
    return generate(
        SyntheticSpec(
            name="stress", n_rows=700, n_numeric=5, n_categorical=3,
            n_classes=3, planted_depth=4, noise=0.12,
            missing_rate=0.04, seed=123,
        )
    )


class TestMixedWorkloads:
    def test_everything_in_one_run(self, table):
        """All job flavours submitted together; every model is exact."""
        system = SystemConfig(n_workers=5, compers_per_worker=3).scaled_to(
            table.n_rows
        )
        jobs = [
            decision_tree_job("dt", TreeConfig(max_depth=7)),
            random_forest_job("rf", 5, TreeConfig(max_depth=5), seed=1),
            extra_trees_job("et", 3, seed=2),
            staged_job(
                "staged",
                [[TreeConfig(max_depth=4, seed=5)],
                 [TreeConfig(max_depth=4, seed=6)]],
            ),
            random_forest_job(
                "boot", 3, TreeConfig(max_depth=5), seed=3,
                bootstrap_rows=True,
            ),
        ]
        report = TreeServer(system).fit(table, jobs)
        assert report.counters.trees_completed == 14  # 1+5+3+2+3

        assert trees_equal(
            train_tree(table, TreeConfig(max_depth=7)), report.tree("dt")
        )
        for i, request in enumerate(jobs[1].stages[0].trees):
            assert trees_equal(
                train_tree(table, request.config), report.trees("rf")[i]
            )
        for i, request in enumerate(jobs[2].stages[0].trees):
            assert trees_equal(
                train_tree(table, request.config), report.trees("et")[i]
            )
        for i, request in enumerate(jobs[4].stages[0].trees):
            serial = train_tree(
                table,
                request.config,
                row_ids=bootstrap_row_ids(request.config.seed, table.n_rows),
            )
            assert trees_equal(serial, report.trees("boot")[i])

    def test_mixed_workload_with_crash_and_secondary(self, table):
        system = SystemConfig(
            n_workers=5, compers_per_worker=2, column_replication=2
        ).scaled_to(table.n_rows)
        jobs = [
            decision_tree_job("dt", TreeConfig(max_depth=6)),
            random_forest_job("rf", 4, TreeConfig(max_depth=5), seed=9),
        ]
        clean = TreeServer(system).fit(table, jobs)
        crashed = TreeServer(system).fit(
            table,
            [
                decision_tree_job("dt", TreeConfig(max_depth=6)),
                random_forest_job("rf", 4, TreeConfig(max_depth=5), seed=9),
            ],
            crash_plans=[
                CrashPlan(machine_id=2, at_time=clean.sim_seconds / 4),
                CrashPlan(machine_id=0, at_time=clean.sim_seconds / 2),
            ],
            secondary_master=True,
        )
        assert trees_equal(clean.tree("dt"), crashed.tree("dt"))
        for a, b in zip(clean.trees("rf"), crashed.trees("rf")):
            assert trees_equal(a, b)

    def test_tiny_cluster_huge_pool(self, table):
        """1 worker, 1 comper, n_pool far above tree count: still exact."""
        system = SystemConfig(
            n_workers=1, compers_per_worker=1, n_pool=500
        ).scaled_to(table.n_rows)
        job = random_forest_job("rf", 6, TreeConfig(max_depth=5), seed=4)
        report = TreeServer(system).fit(table, [job])
        for i, request in enumerate(job.stages[0].trees):
            assert trees_equal(
                train_tree(table, request.config), report.trees("rf")[i]
            )

    def test_deep_unbounded_tree_through_engine(self, table):
        """max_depth=None (the cascade-forest setting) works distributed."""
        system = SystemConfig(n_workers=3, compers_per_worker=2).scaled_to(
            table.n_rows
        )
        cfg = TreeConfig(max_depth=None, tau_leaf=4)
        report = TreeServer(system).fit(table, [decision_tree_job("dt", cfg)])
        assert trees_equal(train_tree(table, cfg), report.tree("dt"))

    def test_single_row_table(self):
        tiny = generate(
            SyntheticSpec(
                name="one", n_rows=4, n_numeric=2, n_categorical=0,
                n_classes=2, planted_depth=1, seed=7,
            )
        )
        system = SystemConfig(n_workers=2, compers_per_worker=1)
        report = TreeServer(system).fit(
            tiny, [decision_tree_job("dt", TreeConfig(max_depth=3))]
        )
        assert trees_equal(
            train_tree(tiny, TreeConfig(max_depth=3)), report.tree("dt")
        )

    def test_many_small_jobs(self, table):
        """Model-selection style: 10 one-tree jobs pooled."""
        system = SystemConfig(n_workers=4, compers_per_worker=2).scaled_to(
            table.n_rows
        )
        jobs = [
            decision_tree_job(f"dt{d}", TreeConfig(max_depth=d, seed=d))
            for d in range(1, 11)
        ]
        report = TreeServer(system).fit(table, jobs)
        for d in range(1, 11):
            assert trees_equal(
                train_tree(table, TreeConfig(max_depth=d, seed=d)),
                report.tree(f"dt{d}"),
            )
