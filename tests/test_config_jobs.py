"""Tests for configuration objects and job specifications."""

import pytest

from repro.core import ColumnSampling, SystemConfig, TreeConfig, TreeKind
from repro.core.impurity import Impurity
from repro.core.jobs import (
    decision_tree_job,
    extra_trees_job,
    random_forest_job,
    staged_job,
)


class TestTreeConfig:
    def test_defaults_match_paper(self):
        cfg = TreeConfig()
        assert cfg.max_depth == 10
        assert cfg.tau_leaf == 1
        assert cfg.tree_kind is TreeKind.DECISION

    def test_criterion_defaults(self):
        cfg = TreeConfig()
        assert cfg.resolved_criterion(True) is Impurity.GINI
        assert cfg.resolved_criterion(False) is Impurity.VARIANCE
        forced = TreeConfig(criterion=Impurity.ENTROPY)
        assert forced.resolved_criterion(True) is Impurity.ENTROPY

    def test_candidate_counts(self):
        assert TreeConfig().n_candidate_columns(100) == 100
        sqrt_cfg = TreeConfig(column_sampling=ColumnSampling.SQRT)
        assert sqrt_cfg.n_candidate_columns(100) == 10
        ratio_cfg = TreeConfig(
            column_sampling=ColumnSampling.RATIO, column_ratio=0.3
        )
        assert ratio_cfg.n_candidate_columns(100) == 30
        assert ratio_cfg.n_candidate_columns(1) == 1  # floor at 1

    def test_with_seed(self):
        cfg = TreeConfig(max_depth=5)
        other = cfg.with_seed(42)
        assert other.seed == 42
        assert other.max_depth == 5


class TestSystemConfig:
    def test_defaults_match_paper(self):
        system = SystemConfig()
        assert system.n_workers == 15
        assert system.compers_per_worker == 10
        assert system.tau_subtree == 10_000
        assert system.tau_dfs == 80_000
        assert system.n_pool == 200
        assert system.column_replication == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(n_workers=0)
        with pytest.raises(ValueError):
            SystemConfig(tau_subtree=100, tau_dfs=50)
        with pytest.raises(ValueError):
            SystemConfig(column_replication=0)
        with pytest.raises(ValueError):
            SystemConfig(n_pool=0)
        with pytest.raises(ValueError):
            SystemConfig(scheduling_policy="random")

    def test_scaled_to_preserves_ratio(self):
        scaled = SystemConfig().scaled_to(50_000)
        assert scaled.tau_dfs == pytest.approx(8 * scaled.tau_subtree, rel=0.1)
        assert scaled.tau_subtree >= 32

    def test_scaled_to_has_floor(self):
        tiny = SystemConfig().scaled_to(100)
        assert tiny.tau_subtree == 32


class TestJobs:
    def test_decision_tree_job(self):
        job = decision_tree_job("dt")
        assert job.n_trees == 1
        assert len(job.stages) == 1

    def test_random_forest_job_seeds_differ(self):
        job = random_forest_job("rf", 5, seed=3)
        seeds = [t.config.seed for t in job.stages[0].trees]
        assert len(set(seeds)) == 5

    def test_random_forest_normalizes_sampling(self):
        job = random_forest_job("rf", 2, TreeConfig())  # ALL -> SQRT
        assert (
            job.stages[0].trees[0].config.column_sampling is ColumnSampling.SQRT
        )

    def test_random_forest_keeps_explicit_ratio(self):
        cfg = TreeConfig(column_sampling=ColumnSampling.RATIO, column_ratio=0.5)
        job = random_forest_job("rf", 2, cfg)
        assert (
            job.stages[0].trees[0].config.column_sampling
            is ColumnSampling.RATIO
        )

    def test_extra_trees_job_kind(self):
        job = extra_trees_job("et", 3)
        for request in job.stages[0].trees:
            assert request.config.tree_kind is TreeKind.EXTRA
            assert request.config.column_sampling is ColumnSampling.ALL

    def test_staged_job_structure(self):
        job = staged_job("b", [[TreeConfig()], [TreeConfig(), TreeConfig()]])
        assert len(job.stages) == 2
        assert job.n_trees == 3

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            random_forest_job("rf", 0)
        with pytest.raises(ValueError):
            staged_job("x", [])
        with pytest.raises(ValueError):
            staged_job("x", [[]])
