"""Tests for metrics, the experiment harness and table rendering."""

import numpy as np
import pytest

from repro.core import SystemConfig, TreeConfig
from repro.evaluation import (
    ComparisonTable,
    ExperimentRow,
    accuracy,
    format_table,
    load_dataset,
    pmf_accuracy,
    rmse,
    run_mllib,
    run_treeserver,
    run_xgboost,
    score,
    sweep_table,
)
from repro.baselines import XGBoostConfig


class TestMetrics:
    def test_accuracy(self):
        assert accuracy([1, 2, 3], [1, 2, 0]) == pytest.approx(2 / 3)

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy([1, 2], [1, 2, 3])

    def test_accuracy_empty(self):
        with pytest.raises(ValueError):
            accuracy([], [])

    def test_rmse(self):
        assert rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(np.sqrt(12.5))

    def test_pmf_accuracy(self):
        pmf = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        assert pmf_accuracy(np.array([0, 1, 1]), pmf) == pytest.approx(2 / 3)

    def test_score_dispatch(self):
        assert score(True, [1, 1], [1, 0]) == pytest.approx(0.5)
        assert score(False, [0.0], [2.0]) == pytest.approx(2.0)


class TestHarness:
    @pytest.fixture(scope="class")
    def data(self):
        return load_dataset("susy", small=True)

    def test_run_treeserver_row(self, data):
        train, test = data
        row = run_treeserver(
            "susy", train, test, TreeConfig(max_depth=6),
            system=SystemConfig(n_workers=3, compers_per_worker=2),
        )
        assert row.system == "TreeServer"
        assert row.sim_seconds > 0
        assert row.quality_metric == "accuracy"
        assert 0 <= row.quality <= 1
        assert row.cpu_percent is not None

    def test_run_treeserver_forest(self, data):
        train, test = data
        row = run_treeserver(
            "susy", train, test, TreeConfig(max_depth=5), n_trees=3, seed=1,
            system=SystemConfig(n_workers=3, compers_per_worker=2),
        )
        assert row.params["n_trees"] == 3

    def test_run_mllib_variants(self, data):
        train, test = data
        parallel = run_mllib("susy", train, test, TreeConfig(max_depth=6))
        single = run_mllib(
            "susy", train, test, TreeConfig(max_depth=6), single_thread=True
        )
        assert parallel.system == "MLlib (Parallel)"
        assert single.system == "MLlib (Single Thread)"
        assert parallel.sim_seconds != single.sim_seconds

    def test_run_xgboost(self, data):
        train, test = data
        row = run_xgboost(
            "susy", train, test, XGBoostConfig(n_rounds=4, max_depth=3)
        )
        assert row.system == "XGBoost"
        assert row.params["n_rounds"] == 4

    def test_quality_str_formats(self):
        acc_row = ExperimentRow("s", "d", 1.0, 0.876, "accuracy")
        assert acc_row.quality_str() == "87.60%"
        rmse_row = ExperimentRow("s", "d", 1.0, 0.4567, "rmse")
        assert rmse_row.quality_str() == "0.4567"

    def test_regression_dataset_uses_rmse(self):
        train, test = load_dataset("allstate", small=True)
        row = run_mllib("allstate", train, test, TreeConfig(max_depth=4))
        assert row.quality_metric == "rmse"


class TestTables:
    def test_format_table_alignment(self):
        text = format_table("T", ["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "333" in lines[-1]

    def test_comparison_table_render_and_speedup(self):
        table = ComparisonTable("X", ["A", "B"])
        table.add(ExperimentRow("A", "d1", 1.0, 0.9, "accuracy"))
        table.add(ExperimentRow("B", "d1", 4.0, 0.8, "accuracy"))
        out = table.render()
        assert "d1" in out and "90.00%" in out
        assert table.speedup("d1", "A", "B") == pytest.approx(4.0)

    def test_comparison_table_missing_system_dash(self):
        table = ComparisonTable("X", ["A", "B"])
        table.add(ExperimentRow("A", "d1", 1.0, 0.9, "accuracy"))
        assert "-" in table.render()

    def test_sweep_table(self):
        rows = [
            (10, ExperimentRow("S", "d", 1.0, 0.5, "accuracy")),
            (20, ExperimentRow("S", "d", 2.0, 0.6, "accuracy")),
        ]
        out = sweep_table("T", "param", rows, extra_columns={"x": ["a", "b"]})
        assert "param" in out and "60.00%" in out and "b" in out
