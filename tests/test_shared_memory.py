"""The shared-memory data plane's primitives: tables, arenas, lifecycle.

``SharedTableHandle`` and ``ShmArena`` (``repro.data.shared``) carry the
mp backend's zero-copy data plane, so their contracts are pinned directly:
attach rebuilds bit-identical *read-only* views under any start method,
descriptors stay tiny regardless of payload, arena slots recycle, and —
above all — no ``/dev/shm`` segment outlives its owner.  Every test
asserts the segments it created are gone afterwards; the suite-level
guarantee (nothing leaked even on crash paths) is pinned in
``tests/test_runtime_mp.py`` against the real runtime.
"""

from __future__ import annotations

import multiprocessing
import pickle

import numpy as np
import pytest

from repro.data.shared import (
    SHM_NAME_PREFIX,
    SharedTableHandle,
    ShmArena,
    ShmSlice,
    create_segment,
    list_segments,
    new_run_prefix,
    unlink_segments,
)
from repro.data.shm import SharedArrayPack
from repro.datasets import dataset_spec, generate


def _table(name="covtype"):
    return generate(dataset_spec(name, small=True))


@pytest.fixture(autouse=True)
def no_segment_leaks():
    """Every test in this file must leave /dev/shm exactly as it found it."""
    before = set(list_segments())
    yield
    leaked = sorted(set(list_segments()) - before)
    assert not leaked, f"test leaked shared-memory segments: {leaked}"


# ----------------------------------------------------------------------
# shared table
# ----------------------------------------------------------------------
class TestSharedTableHandle:
    def test_attach_rebuilds_identical_readonly_table(self):
        table = _table()
        handle = SharedTableHandle.create(table, new_run_prefix())
        try:
            attached = handle.attach()
            try:
                clone = attached.table
                assert clone.n_rows == table.n_rows
                assert clone.n_columns == table.n_columns
                assert clone.schema == table.schema
                np.testing.assert_array_equal(clone.target, table.target)
                for mine, theirs in zip(table.columns, clone.columns):
                    np.testing.assert_array_equal(mine, theirs)
                    assert theirs.dtype == mine.dtype
                    # The view is zero-copy and immutable — the protocol
                    # treats the table as read-only for the whole run.
                    assert not theirs.flags.writeable
                    with pytest.raises((ValueError, RuntimeError)):
                        theirs[0] = theirs[0]
                assert attached.nbytes == handle.nbytes > 0
            finally:
                attached.close()
        finally:
            handle.unlink()

    def test_segments_exist_only_between_create_and_unlink(self):
        table = _table()
        prefix = new_run_prefix()
        handle = SharedTableHandle.create(table, prefix)
        names = handle.segment_names()
        assert len(names) == table.n_columns + 1  # columns + target
        assert list_segments(prefix) == sorted(names)
        handle.unlink()
        assert list_segments(prefix) == []
        handle.unlink()  # idempotent

    def test_pickled_handle_is_metadata_only(self):
        """The handle ships to workers by value; ownership must not."""
        table = _table()
        handle = SharedTableHandle.create(table, new_run_prefix())
        try:
            clone = pickle.loads(pickle.dumps(handle))
            assert clone.segment_names() == handle.segment_names()
            assert clone.nbytes == handle.nbytes
            assert len(pickle.dumps(handle)) < 8192  # no array payloads
            # An attacher calling unlink by mistake must be a no-op: the
            # segments stay alive for the real owner.
            clone.unlink()
            assert list_segments(handle.segment_names()[0]) != []
            attached = clone.attach()
            np.testing.assert_array_equal(attached.table.target, table.target)
            attached.close()
        finally:
            handle.unlink()

    def test_attach_under_spawn(self):
        """A spawn child (inheriting nothing) attaches purely by name."""
        if "spawn" not in multiprocessing.get_all_start_methods():
            pytest.skip("spawn start method not available")
        table = _table()
        handle = SharedTableHandle.create(table, new_run_prefix())
        try:
            ctx = multiprocessing.get_context("spawn")
            queue = ctx.Queue()
            process = ctx.Process(
                target=_spawn_child_checksums, args=(handle, queue)
            )
            process.start()
            sums = queue.get(timeout=60.0)
            process.join(timeout=60.0)
            assert process.exitcode == 0
            expected = [float(np.nansum(c)) for c in table.columns] + [
                float(np.nansum(table.target))
            ]
            assert sums == pytest.approx(expected)
        finally:
            handle.unlink()


def _spawn_child_checksums(handle, queue) -> None:
    """Spawn target: attach the shared table and report per-array sums."""
    attached = handle.attach()
    try:
        table = attached.table
        sums = [float(np.nansum(c)) for c in table.columns] + [
            float(np.nansum(table.target))
        ]
        queue.put(sums)
    finally:
        attached.close()


# ----------------------------------------------------------------------
# row-id arena
# ----------------------------------------------------------------------
class TestShmArena:
    def test_write_read_round_trip_and_tiny_descriptor(self):
        arena = ShmArena(new_run_prefix())
        try:
            rows = np.arange(100_000, dtype=np.int64) * 3
            ref = arena.write(rows)
            # The wire cost is the descriptor, not the payload.
            assert isinstance(ref, ShmSlice)
            assert ref.nbytes == rows.nbytes
            assert len(pickle.dumps(ref)) < 200
            out = arena.read(ref)
            np.testing.assert_array_equal(out, rows)
            assert out.dtype == rows.dtype
            # read returns a private copy: mutating it cannot corrupt the
            # arena, and the owner may recycle the slot underneath it.
            out[0] = -1
            np.testing.assert_array_equal(arena.read(ref), rows)
            arena.free(ref)
        finally:
            arena.close()

    def test_slots_recycle_after_free(self):
        arena = ShmArena(new_run_prefix(), segment_bytes=1 << 16)
        try:
            a = arena.write(np.arange(64, dtype=np.int64))
            b = arena.write(np.arange(64, dtype=np.int64))
            assert a.segment == b.segment and b.offset > a.offset
            assert arena.live_slices == 2
            arena.free(a)
            arena.free(b)
            assert arena.live_slices == 0
            # Fully-freed segment rewinds: the next write reuses offset 0
            # of the same segment instead of growing the pool.
            c = arena.write(np.arange(64, dtype=np.int64))
            assert (c.segment, c.offset) == (a.segment, a.offset)
            arena.free(c)
            assert list_segments(arena.prefix) == [a.segment]
        finally:
            arena.close()

    def test_oversized_payload_gets_dedicated_segment(self):
        arena = ShmArena(new_run_prefix(), segment_bytes=4096)
        try:
            small = arena.write(np.arange(8, dtype=np.int64))
            big = np.arange(10_000, dtype=np.int64)  # 80 KB > 4 KB pool
            ref = arena.write(big)
            assert ref.segment != small.segment
            np.testing.assert_array_equal(arena.read(ref), big)
            arena.free(small)
            arena.free(ref)
        finally:
            arena.close()

    def test_cross_process_shape_reader_attaches_by_name(self):
        """Reading another arena's slice works purely from the descriptor."""
        writer = ShmArena(new_run_prefix())
        reader = ShmArena(new_run_prefix())
        try:
            rows = np.arange(5000, dtype=np.int64) + 7
            ref = pickle.loads(pickle.dumps(writer.write(rows)))
            np.testing.assert_array_equal(reader.read(ref), rows)
            assert reader.bytes_read == rows.nbytes
            writer.free(ref)
        finally:
            reader.close()
            writer.close()

    def test_misuse_is_loud(self):
        arena = ShmArena(new_run_prefix())
        other = ShmArena(new_run_prefix())
        try:
            ref = arena.write(np.arange(4, dtype=np.int64))
            with pytest.raises(ValueError, match="does not belong"):
                other.free(ref)
            arena.free(ref)
            with pytest.raises(RuntimeError, match="double free"):
                arena.free(ref)
        finally:
            other.close()
            arena.close()

    def test_close_is_idempotent_and_unlinks(self):
        arena = ShmArena(new_run_prefix())
        arena.write(np.arange(16, dtype=np.int64))
        assert list_segments(arena.prefix) != []
        arena.close()
        assert list_segments(arena.prefix) == []
        arena.close()


# ----------------------------------------------------------------------
# crash sweep
# ----------------------------------------------------------------------
class TestSweep:
    def test_unlink_segments_reclaims_by_name(self):
        """The parent's post-crash sweep: reclaim segments by listing."""
        prefix = new_run_prefix()
        orphans = [create_segment(f"{prefix}-s{i}", 4096) for i in range(3)]
        for segment in orphans:
            segment.close()  # owner "died": mapping gone, file left behind
        names = list_segments(prefix)
        assert len(names) == 3
        assert all(name.startswith(SHM_NAME_PREFIX) for name in names)
        removed = unlink_segments(names)
        assert removed == names
        assert list_segments(prefix) == []
        assert unlink_segments(names) == []  # idempotent on gone names


# ----------------------------------------------------------------------
# module move: repro.data.shm is the real module, shared re-exports
# ----------------------------------------------------------------------
class TestModulePath:
    def test_shm_module_is_canonical(self):
        import repro.data.shm as shm

        assert SharedTableHandle.__module__ == "repro.data.shm"
        assert ShmArena.__module__ == "repro.data.shm"
        assert SharedArrayPack.__module__ == "repro.data.shm"
        assert shm.SHM_NAME_PREFIX == SHM_NAME_PREFIX

    def test_shared_compat_reexports_same_objects(self):
        """``repro.data.shared`` imports stay valid and alias, not copy."""
        import repro.data.shared as shared
        import repro.data.shm as shm

        for name in shared.__all__:
            assert getattr(shared, name) is getattr(shm, name), name


# ----------------------------------------------------------------------
# packed array segments (the compiled-model carrier)
# ----------------------------------------------------------------------
class TestSharedArrayPack:
    def _arrays(self):
        rng = np.random.default_rng(7)
        return [
            ("a.f64", rng.normal(size=129)),
            ("b.i16", rng.integers(-5, 5, size=(7, 3)).astype(np.int16)),
            ("c.f32", rng.normal(size=0).astype(np.float32)),  # empty ok
            ("d.bool", rng.integers(0, 2, size=33).astype(bool)),
        ]

    def test_round_trip_readonly_views(self):
        arrays = self._arrays()
        pack = SharedArrayPack.create(arrays, f"{new_run_prefix()}-pack")
        try:
            attached = pack.attach()
            try:
                assert set(attached.arrays) == {n for n, _ in arrays}
                for name, original in arrays:
                    view = attached.arrays[name]
                    assert view.dtype == original.dtype
                    assert view.shape == original.shape
                    np.testing.assert_array_equal(view, original)
                    assert not view.flags.writeable
            finally:
                attached.close()
        finally:
            pack.unlink()
        pack.unlink()  # idempotent

    def test_single_segment_and_aligned_offsets(self):
        pack = SharedArrayPack.create(self._arrays(), f"{new_run_prefix()}-p1")
        try:
            assert len(list_segments(pack.segment)) == 1
            assert all(spec.offset % 8 == 0 for spec in pack.specs)
            assert pack.nbytes == sum(s.nbytes for s in pack.specs)
        finally:
            pack.unlink()

    def test_pickled_pack_is_metadata_only(self):
        arrays = self._arrays()
        payload = sum(a.nbytes for _, a in arrays)
        pack = SharedArrayPack.create(arrays, f"{new_run_prefix()}-p2")
        try:
            blob = pickle.dumps(pack)
            assert len(blob) < max(2048, payload // 4)
            clone = pickle.loads(blob)
            attached = clone.attach()
            try:
                np.testing.assert_array_equal(
                    attached.arrays["a.f64"], arrays[0][1]
                )
            finally:
                attached.close()
        finally:
            pack.unlink()

    def test_duplicate_names_rejected(self):
        rows = np.zeros(4)
        with pytest.raises(ValueError, match="duplicate"):
            SharedArrayPack.create(
                [("x", rows), ("x", rows)], f"{new_run_prefix()}-p3"
            )


# ----------------------------------------------------------------------
# compiled models in shm (the serving fleet's carrier)
# ----------------------------------------------------------------------
def _crash_child_after_attach(handle, conn) -> None:
    """Child target: attach the model, prove it read it, die without cleanup.

    Reports through a Pipe (synchronous fd write — a Queue's feeder
    thread would lose the payload to the immediate hard exit below).
    """
    import os

    attached = handle.attach()
    conn.send(float(np.nansum(attached.forest.trees[0].threshold)))
    os._exit(9)  # simulated crash: no close(), no atexit, nothing


class TestSharedCompiledModel:
    def _compiled(self):
        from repro.core import TreeConfig, train_tree
        from repro.ensemble import ForestModel
        from repro.serving import compile_forest

        table = _table()
        forest = ForestModel(
            [train_tree(table, TreeConfig(max_depth=5, seed=i)) for i in range(2)]
        )
        return compile_forest(forest), table

    def test_attach_detach_round_trip(self):
        from repro.serving import SharedCompiledModel, flat_fingerprint
        from repro.serving.batch import BatchPredictor

        flat, table = self._compiled()
        key = flat_fingerprint(flat)
        handle = SharedCompiledModel.create(flat, key)
        try:
            assert len(handle.segment_names()) == 1  # one segment per model
            attached = handle.attach()
            try:
                assert attached.key == key
                assert attached.nbytes == handle.nbytes == flat.nbytes()
                mat = np.column_stack(
                    [c.astype(np.float64) for c in table.columns]
                )
                np.testing.assert_array_equal(
                    attached.predictor.predict_proba_matrix(mat),
                    BatchPredictor(flat).predict_proba_matrix(mat),
                )
                tree = attached.forest.trees[0]
                assert not tree.threshold.flags.writeable
            finally:
                attached.close()
            attached.close()  # idempotent
        finally:
            handle.unlink()
        handle.unlink()  # idempotent

    def test_handle_pickles_metadata_only(self):
        from repro.serving import SharedCompiledModel, flat_fingerprint

        flat, _ = self._compiled()
        handle = SharedCompiledModel.create(flat, flat_fingerprint(flat))
        try:
            blob = pickle.dumps(handle)
            assert len(blob) < max(4096, handle.nbytes // 4)
            clone = pickle.loads(blob)
            attached = clone.attach()
            try:
                assert attached.forest.n_trees == flat.n_trees
            finally:
                attached.close()
        finally:
            handle.unlink()

    def test_no_leak_after_attacher_crash(self):
        """A worker that dies mid-attachment leaves nothing in /dev/shm.

        The creator is the only owner: after the child hard-exits without
        closing, the parent's unlink fully reclaims the segment (the
        autouse fixture asserts the sweep-level invariant).
        """
        from repro.serving import SharedCompiledModel, flat_fingerprint

        flat, _ = self._compiled()
        handle = SharedCompiledModel.create(flat, flat_fingerprint(flat))
        try:
            ctx = multiprocessing.get_context("fork")
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            process = ctx.Process(
                target=_crash_child_after_attach, args=(handle, child_conn)
            )
            process.start()
            child_conn.close()
            assert parent_conn.poll(60.0)
            checksum = parent_conn.recv()
            process.join(timeout=60.0)
            assert process.exitcode == 9
            assert checksum == pytest.approx(
                float(np.nansum(flat.trees[0].threshold))
            )
            # The segment is still alive (the crash must not take the
            # published model down with it) ...
            assert list_segments(handle.pack.segment) == [handle.pack.segment]
        finally:
            # ... and the owner reclaims it completely.
            handle.unlink()
        assert list_segments(handle.pack.segment) == []
