"""Edge-case coverage across smaller surfaces of the library."""

import io

import numpy as np
import pytest

from repro.cli import main
from repro.cluster import CostModel, SimulationEngine, log2_ceil
from repro.core import TreeConfig, TreeKind, train_tree
from repro.baselines.histogram import bin_indices, equi_depth_thresholds
from repro.data import write_csv


class TestSimulationHandles:
    def test_event_handle_time(self):
        engine = SimulationEngine()
        handle = engine.schedule(2.5, lambda: None)
        assert handle.time == 2.5

    def test_pending_events(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        assert engine.pending_events() == 2
        engine.run()
        assert engine.pending_events() == 0


class TestCostModelEdges:
    def test_log2_ceil_floors_at_one(self):
        assert log2_ceil(0) == 1.0
        assert log2_ceil(1) == 1.0
        assert log2_ceil(2) == 1.0
        assert log2_ceil(1024) == 10.0

    def test_dispatch_ops_scale(self):
        cost = CostModel()
        small = cost.master_dispatch_ops(2, 4)
        large = cost.master_dispatch_ops(100, 16)
        assert large > small


class TestBinIndices:
    def test_missing_get_negative_bin(self):
        thresholds = np.array([1.0, 2.0])
        values = np.array([0.5, 1.5, np.nan, 3.0])
        bins = bin_indices(values, thresholds)
        assert bins.tolist() == [0, 1, -1, 2]

    def test_boundary_value_bins_left(self):
        thresholds = np.array([2.0])
        bins = bin_indices(np.array([2.0, 2.0001]), thresholds)
        # v <= threshold means "left": bin 0 covers values <= 2.0.
        assert bins.tolist() == [0, 1]

    def test_thresholds_are_data_values(self):
        values = np.array([5.0, 1.0, 3.0, 9.0, 7.0] * 10)
        thresholds = equi_depth_thresholds(values, 4)
        assert set(thresholds) <= set(values)


class TestDataTableIteration:
    def test_rows_iterator(self, tiny_classification):
        rows = list(tiny_classification.rows())
        assert len(rows) == 10
        assert rows[0][0] == 24.0  # age of the first customer


class TestCliExtra:
    @pytest.fixture
    def csv_path(self, small_mixed_classification, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(small_mixed_classification, path)
        return path

    def _run(self, argv):
        out = io.StringIO()
        return main(argv, out=out), out.getvalue()

    def test_train_extra_trees(self, csv_path, tmp_path):
        code, output = self._run(
            [
                "train", "--csv", str(csv_path), "--target", "label",
                "--model-dir", str(tmp_path / "et"), "--extra-trees",
                "--forest", "3", "--max-depth", "5",
                "--workers", "2", "--compers", "2",
            ]
        )
        assert code == 0
        assert "trained 3 tree(s)" in output

    def test_predict_without_target_column(
        self, small_mixed_classification, tmp_path
    ):
        """A feature-only CSV gets a dummy target injected for parsing."""
        train_csv = tmp_path / "train.csv"
        write_csv(small_mixed_classification, train_csv)
        model_dir = tmp_path / "model"
        self._run(
            [
                "train", "--csv", str(train_csv), "--target", "label",
                "--model-dir", str(model_dir), "--max-depth", "4",
                "--workers", "2", "--compers", "1",
            ]
        )
        # Strip the label column.
        lines = train_csv.read_text().strip().splitlines()
        header = lines[0].split(",")
        label_pos = header.index("label")
        feature_csv = tmp_path / "features.csv"
        stripped = []
        for line in lines:
            fields = line.split(",")
            del fields[label_pos]
            stripped.append(",".join(fields))
        feature_csv.write_text("\n".join(stripped) + "\n")

        out_path = tmp_path / "preds.csv"
        code, output = self._run(
            [
                "predict", "--csv", str(feature_csv),
                "--model-dir", str(model_dir), "--out", str(out_path),
            ]
        )
        assert code == 0
        predictions = out_path.read_text().strip().splitlines()[1:]
        assert len(predictions) == small_mixed_classification.n_rows

    def test_predict_with_depth_cutoff(self, csv_path, tmp_path):
        model_dir = tmp_path / "model"
        self._run(
            [
                "train", "--csv", str(csv_path), "--target", "label",
                "--model-dir", str(model_dir), "--max-depth", "6",
                "--workers", "2", "--compers", "1",
            ]
        )
        out_full = tmp_path / "full.csv"
        out_shallow = tmp_path / "shallow.csv"
        self._run(
            ["predict", "--csv", str(csv_path), "--target", "label",
             "--model-dir", str(model_dir), "--out", str(out_full)]
        )
        code, _ = self._run(
            ["predict", "--csv", str(csv_path), "--target", "label",
             "--model-dir", str(model_dir), "--out", str(out_shallow),
             "--max-depth", "1"]
        )
        assert code == 0
        assert out_full.read_text() != out_shallow.read_text()


class TestExtraTreeKindThroughCli:
    def test_tree_kind_in_saved_model(self, small_mixed_classification):
        tree = train_tree(
            small_mixed_classification,
            TreeConfig(max_depth=4, tree_kind=TreeKind.EXTRA, seed=3),
        )
        assert tree.n_nodes >= 3
