"""Shared fixtures: small deterministic tables for every problem shape."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import ColumnKind, ColumnSpec, DataTable, ProblemKind, TableSchema
from repro.datasets import SyntheticSpec, generate


@pytest.fixture
def tiny_classification() -> DataTable:
    """The paper's Fig. 1 table: Age/Education/HomeOwner/Income -> Default."""
    schema = TableSchema(
        columns=(
            ColumnSpec("age", ColumnKind.NUMERIC),
            ColumnSpec(
                "education",
                ColumnKind.CATEGORICAL,
                ("Primary", "Secondary", "Bachelor", "Master", "PhD"),
            ),
            ColumnSpec("home_owner", ColumnKind.CATEGORICAL, ("No", "Yes")),
            ColumnSpec("income", ColumnKind.NUMERIC),
        ),
        target=ColumnSpec("default", ColumnKind.CATEGORICAL, ("No", "Yes")),
        problem=ProblemKind.CLASSIFICATION,
    )
    age = np.array([24, 28, 44, 32, 36, 48, 37, 42, 54, 47], dtype=float)
    education = np.array([2, 3, 2, 1, 4, 2, 1, 2, 1, 4], dtype=np.int32)
    home = np.array([0, 1, 1, 1, 0, 1, 0, 0, 0, 1], dtype=np.int32)
    income = np.array(
        [5000, 7500, 5500, 6000, 10000, 6500, 3000, 6000, 4000, 8000],
        dtype=float,
    )
    default = np.array([0, 0, 0, 1, 0, 0, 1, 0, 1, 0], dtype=np.int32)
    return DataTable(schema, [age, education, home, income], default)


@pytest.fixture
def small_mixed_classification() -> DataTable:
    """A few hundred rows with numeric + categorical columns, 3 classes."""
    return generate(
        SyntheticSpec(
            name="mixed",
            n_rows=300,
            n_numeric=4,
            n_categorical=3,
            n_classes=3,
            planted_depth=4,
            noise=0.1,
            seed=42,
        )
    )


@pytest.fixture
def small_regression() -> DataTable:
    """A small regression table with missing values."""
    return generate(
        SyntheticSpec(
            name="reg",
            n_rows=250,
            n_numeric=3,
            n_categorical=2,
            problem=ProblemKind.REGRESSION,
            planted_depth=4,
            noise=0.05,
            missing_rate=0.08,
            seed=43,
        )
    )
