"""Tests for impurity functions, including property-based invariants."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.impurity import (
    Impurity,
    classification_impurity,
    classification_impurity_rows,
    default_impurity,
    entropy,
    entropy_rows,
    gini,
    gini_rows,
    variance,
    variance_rows,
    weighted_children_impurity,
)

counts_strategy = st.lists(
    st.integers(min_value=0, max_value=1000), min_size=1, max_size=8
).map(lambda xs: np.array(xs, dtype=np.float64))


class TestGini:
    def test_pure_is_zero(self):
        assert gini(np.array([10.0, 0.0])) == 0.0

    def test_uniform_binary_is_half(self):
        assert gini(np.array([5.0, 5.0])) == pytest.approx(0.5)

    def test_empty_is_zero(self):
        assert gini(np.array([0.0, 0.0])) == 0.0

    @given(counts_strategy)
    def test_bounds(self, counts):
        value = gini(counts)
        k = len(counts)
        assert 0.0 <= value <= 1.0 - 1.0 / k + 1e-12

    @given(counts_strategy)
    def test_zero_iff_pure(self, counts):
        value = gini(counts)
        nonzero = int((counts > 0).sum())
        if nonzero <= 1:
            assert value == pytest.approx(0.0, abs=1e-12)
        else:
            assert value > 0

    @given(counts_strategy, st.integers(min_value=2, max_value=7))
    def test_scale_invariance(self, counts, factor):
        assert gini(counts * factor) == pytest.approx(gini(counts))


class TestEntropy:
    def test_pure_is_zero(self):
        assert entropy(np.array([7.0, 0.0, 0.0])) == 0.0

    def test_uniform_binary_is_log2(self):
        assert entropy(np.array([4.0, 4.0])) == pytest.approx(np.log(2))

    @given(counts_strategy)
    def test_nonnegative_and_bounded(self, counts):
        value = entropy(counts)
        assert value >= 0.0
        assert value <= np.log(len(counts)) + 1e-12


class TestVariance:
    def test_constant_values(self):
        y = np.full(5, 3.0)
        assert variance(5, y.sum(), (y * y).sum()) == pytest.approx(0.0)

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        y = rng.normal(size=100)
        ours = variance(len(y), y.sum(), (y * y).sum())
        assert ours == pytest.approx(np.var(y), rel=1e-9)

    def test_empty_is_zero(self):
        assert variance(0, 0.0, 0.0) == 0.0

    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    def test_nonnegative(self, values):
        y = np.array(values)
        assert variance(len(y), float(y.sum()), float((y * y).sum())) >= 0.0


class TestVectorizedForms:
    @given(st.lists(counts_strategy, min_size=1, max_size=5))
    def test_gini_rows_matches_scalar(self, rows):
        k = max(len(r) for r in rows)
        matrix = np.zeros((len(rows), k))
        for i, r in enumerate(rows):
            matrix[i, : len(r)] = r
        vec = gini_rows(matrix)
        for i in range(len(rows)):
            assert vec[i] == pytest.approx(gini(matrix[i]))

    @given(st.lists(counts_strategy, min_size=1, max_size=5))
    def test_entropy_rows_matches_scalar(self, rows):
        k = max(len(r) for r in rows)
        matrix = np.zeros((len(rows), k))
        for i, r in enumerate(rows):
            matrix[i, : len(r)] = r
        vec = entropy_rows(matrix)
        for i in range(len(rows)):
            assert vec[i] == pytest.approx(entropy(matrix[i]))

    def test_variance_rows_matches_scalar(self):
        rng = np.random.default_rng(1)
        groups = [rng.normal(size=n) for n in (1, 5, 20)]
        counts = np.array([float(len(g)) for g in groups])
        sums = np.array([g.sum() for g in groups])
        sqs = np.array([(g * g).sum() for g in groups])
        vec = variance_rows(counts, sums, sqs)
        for i, g in enumerate(groups):
            assert vec[i] == pytest.approx(np.var(g), abs=1e-12)

    def test_zero_rows_are_zero(self):
        assert gini_rows(np.zeros((2, 3))).tolist() == [0.0, 0.0]
        assert entropy_rows(np.zeros((2, 3))).tolist() == [0.0, 0.0]


class TestWeightedChildren:
    def test_scalar_mix(self):
        assert weighted_children_impurity(0.5, 10, 0.0, 10) == pytest.approx(0.25)

    def test_zero_total(self):
        assert weighted_children_impurity(0.3, 0, 0.7, 0) == 0.0

    @given(
        st.floats(min_value=0, max_value=1),
        st.integers(min_value=0, max_value=100),
        st.floats(min_value=0, max_value=1),
        st.integers(min_value=0, max_value=100),
    )
    def test_between_children(self, li, lw, ri, rw):
        value = weighted_children_impurity(li, lw, ri, rw)
        assert min(li, ri) - 1e-12 <= value <= max(li, ri) + 1e-12 or (
            lw + rw == 0 and value == 0.0
        )


class TestDispatch:
    def test_classification_dispatch(self):
        counts = np.array([3.0, 7.0])
        assert classification_impurity(counts, Impurity.GINI) == pytest.approx(
            gini(counts)
        )
        assert classification_impurity(
            counts, Impurity.ENTROPY
        ) == pytest.approx(entropy(counts))

    def test_variance_not_classification(self):
        with pytest.raises(ValueError):
            classification_impurity(np.array([1.0]), Impurity.VARIANCE)
        with pytest.raises(ValueError):
            classification_impurity_rows(np.ones((1, 2)), Impurity.VARIANCE)

    def test_defaults_match_paper(self):
        assert default_impurity(True) is Impurity.GINI
        assert default_impurity(False) is Impurity.VARIANCE

    def test_is_classification_flag(self):
        assert Impurity.GINI.is_classification
        assert Impurity.ENTROPY.is_classification
        assert not Impurity.VARIANCE.is_classification
