"""Tests for exact split search — including brute-force cross-checks.

The brute-force comparisons are the key property tests: the one-pass /
grouped algorithms of Appendix B must agree with exhaustive enumeration of
every possible split on small random inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.impurity import (
    Impurity,
    classification_impurity,
    variance,
    weighted_children_impurity,
)
from repro.core.splits import (
    EXHAUSTIVE_SUBSET_LIMIT,
    CandidateSplit,
    best_categorical_classification_split,
    best_categorical_regression_split,
    best_numeric_split,
    best_split_for_column,
    random_split_for_column,
    route_test_value,
    route_training_rows,
)
from repro.data.schema import ColumnKind


def brute_force_numeric(values, y, criterion, n_classes):
    """Score every distinct-value threshold exhaustively."""
    present = ~np.isnan(values)
    vals, ys = values[present], y[present]
    best = None
    for v in sorted(set(vals))[:-1]:
        left = vals <= v
        score = _score(ys[left], ys[~left], criterion, n_classes)
        if best is None or score < best - 1e-12:
            best = score
    return best


def _score(yl, yr, criterion, n_classes):
    if criterion.is_classification:
        li = classification_impurity(
            np.bincount(yl.astype(int), minlength=n_classes).astype(float),
            criterion,
        )
        ri = classification_impurity(
            np.bincount(yr.astype(int), minlength=n_classes).astype(float),
            criterion,
        )
    else:
        li = variance(len(yl), yl.sum(), (yl * yl).sum())
        ri = variance(len(yr), yr.sum(), (yr * yr).sum())
    return weighted_children_impurity(li, len(yl), ri, len(yr))


class TestNumericSplit:
    def test_perfect_separation(self):
        values = np.array([1.0, 2.0, 3.0, 10.0, 11.0, 12.0])
        y = np.array([0, 0, 0, 1, 1, 1])
        split = best_numeric_split(0, values, y, Impurity.GINI, 2)
        assert split is not None
        assert split.threshold == pytest.approx(3.0)
        assert split.score == pytest.approx(0.0)
        assert split.n_left == 3 and split.n_right == 3

    def test_constant_column_returns_none(self):
        values = np.full(5, 2.0)
        y = np.array([0, 1, 0, 1, 0])
        assert best_numeric_split(0, values, y, Impurity.GINI, 2) is None

    def test_single_row_returns_none(self):
        assert (
            best_numeric_split(
                0, np.array([1.0]), np.array([0]), Impurity.GINI, 2
            )
            is None
        )

    def test_all_missing_returns_none(self):
        values = np.full(4, np.nan)
        y = np.array([0, 1, 0, 1])
        assert best_numeric_split(0, values, y, Impurity.GINI, 2) is None

    def test_missing_routed_to_larger_child(self):
        values = np.array([1.0, 2.0, np.nan, 10.0, 11.0, 12.0, np.nan])
        y = np.array([0, 0, 0, 1, 1, 1, 1])
        split = best_numeric_split(0, values, y, Impurity.GINI, 2)
        assert split is not None
        assert split.n_missing == 2
        # Right side has 3 present rows, left has 2 -> missing go right.
        assert not split.missing_to_left
        assert split.n_right == 5 and split.n_left == 2

    def test_regression_split(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        y = np.array([0.0, 0.0, 10.0, 10.0])
        split = best_numeric_split(0, values, y, Impurity.VARIANCE, 0)
        assert split is not None
        assert split.threshold == pytest.approx(2.0)
        assert split.score == pytest.approx(0.0)

    def test_tie_breaks_to_smallest_threshold(self):
        # Both thresholds 1.0 and 2.0 give identical scores here.
        values = np.array([1.0, 2.0, 3.0, 4.0])
        y = np.array([0, 1, 0, 1])
        split = best_numeric_split(0, values, y, Impurity.GINI, 2)
        assert split is not None
        assert split.threshold == pytest.approx(1.0)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=8),
                st.integers(min_value=0, max_value=2),
            ),
            min_size=2,
            max_size=40,
        )
    )
    def test_matches_brute_force_classification(self, pairs):
        values = np.array([float(v) for v, _ in pairs])
        y = np.array([c for _, c in pairs])
        split = best_numeric_split(0, values, y, Impurity.GINI, 3)
        brute = brute_force_numeric(values, y, Impurity.GINI, 3)
        if brute is None:
            assert split is None
        else:
            assert split is not None
            assert split.score == pytest.approx(brute, abs=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=6),
                st.floats(min_value=-5, max_value=5, allow_nan=False),
            ),
            min_size=2,
            max_size=30,
        )
    )
    def test_matches_brute_force_regression(self, pairs):
        values = np.array([float(v) for v, _ in pairs])
        y = np.array([t for _, t in pairs])
        split = best_numeric_split(0, values, y, Impurity.VARIANCE, 0)
        brute = brute_force_numeric(values, y, Impurity.VARIANCE, 0)
        if brute is None:
            assert split is None
        else:
            assert split is not None
            assert split.score == pytest.approx(brute, abs=1e-9)


class TestCategoricalRegression:
    def test_breiman_matches_exhaustive(self):
        """Breiman's prefix-cut result vs all 2^(k-1)-1 subsets."""
        rng = np.random.default_rng(5)
        for trial in range(20):
            k = int(rng.integers(2, 6))
            n = int(rng.integers(4, 40))
            codes = rng.integers(0, k, size=n).astype(np.int32)
            y = rng.normal(size=n)
            split = best_categorical_regression_split(0, codes, y, k)
            best = None
            seen = sorted(set(codes.tolist()))
            if len(seen) < 2:
                assert split is None
                continue
            for mask in range(1, 1 << (len(seen) - 1)):
                subset = {
                    seen[i]
                    for i in range(len(seen))
                    if (i == 0) or (mask >> (i - 1)) & 1
                } | {seen[0]}
                if len(subset) == len(seen):
                    continue
                left = np.isin(codes, list(subset))
                score = _score(y[left], y[~left], Impurity.VARIANCE, 0)
                if best is None or score < best:
                    best = score
            # Also the pure singleton-first subset {seen[0]}:
            left = codes == seen[0]
            singleton = _score(y[left], y[~left], Impurity.VARIANCE, 0)
            best = singleton if best is None else min(best, singleton)
            assert split is not None
            assert split.score == pytest.approx(best, abs=1e-9)

    def test_single_category_returns_none(self):
        codes = np.zeros(5, dtype=np.int32)
        y = np.arange(5, dtype=float)
        assert best_categorical_regression_split(0, codes, y, 3) is None

    def test_left_right_partition_categories(self):
        codes = np.array([0, 0, 1, 1, 2, 2], dtype=np.int32)
        y = np.array([0.0, 0.1, 5.0, 5.1, 0.05, 0.0])
        split = best_categorical_regression_split(0, codes, y, 3)
        assert split is not None
        assert split.left_categories is not None
        assert split.right_categories is not None
        assert split.left_categories | split.right_categories == {0, 1, 2}
        assert split.left_categories & split.right_categories == frozenset()
        # Category 1 (mean 5) should be separated from 0 and 2 (mean ~0).
        assert split.left_categories == {0, 2} or split.right_categories == {0, 2}


class TestCategoricalClassification:
    def test_exhaustive_small_cardinality(self):
        codes = np.array([0, 0, 1, 1, 2, 2], dtype=np.int32)
        y = np.array([0, 0, 1, 1, 0, 0], dtype=np.int64)
        split = best_categorical_classification_split(
            0, codes, y, 3, Impurity.GINI, 2
        )
        assert split is not None
        assert split.score == pytest.approx(0.0)
        assert split.left_categories in ({1}, {0, 2})

    def test_singleton_restriction_above_limit(self):
        k = EXHAUSTIVE_SUBSET_LIMIT + 4
        rng = np.random.default_rng(3)
        codes = rng.integers(0, k, size=200).astype(np.int32)
        y = (codes == 3).astype(np.int64)  # category 3 determines the class
        split = best_categorical_classification_split(
            0, codes, y, k, Impurity.GINI, 2
        )
        assert split is not None
        assert len(split.left_categories) == 1  # |S_l| = 1 restriction
        assert split.left_categories == {3}
        assert split.score == pytest.approx(0.0)

    def test_missing_counted(self):
        codes = np.array([0, 0, 1, 1, -1, -1], dtype=np.int32)
        y = np.array([0, 0, 1, 1, 0, 1], dtype=np.int64)
        split = best_categorical_classification_split(
            0, codes, y, 2, Impurity.GINI, 2
        )
        assert split is not None
        assert split.n_missing == 2
        assert split.n_left + split.n_right == 6

    def test_all_one_category_returns_none(self):
        codes = np.zeros(6, dtype=np.int32)
        y = np.array([0, 1, 0, 1, 0, 1], dtype=np.int64)
        assert (
            best_categorical_classification_split(
                0, codes, y, 4, Impurity.GINI, 2
            )
            is None
        )


class TestDispatcher:
    def test_dispatch_numeric(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        y = np.array([0, 0, 1, 1])
        split = best_split_for_column(
            0, ColumnKind.NUMERIC, values, y, Impurity.GINI, 2
        )
        assert split is not None and split.kind is ColumnKind.NUMERIC

    def test_dispatch_categorical_classification(self):
        codes = np.array([0, 0, 1, 1], dtype=np.int32)
        y = np.array([0, 0, 1, 1])
        split = best_split_for_column(
            0, ColumnKind.CATEGORICAL, codes, y, Impurity.GINI, 2, 2
        )
        assert split is not None and split.kind is ColumnKind.CATEGORICAL

    def test_dispatch_categorical_regression(self):
        codes = np.array([0, 0, 1, 1], dtype=np.int32)
        y = np.array([0.0, 0.0, 5.0, 5.0])
        split = best_split_for_column(
            0, ColumnKind.CATEGORICAL, codes, y, Impurity.VARIANCE, 0, 2
        )
        assert split is not None
        assert split.score == pytest.approx(0.0)


class TestRandomSplit:
    def test_numeric_draw_in_range(self):
        rng = np.random.default_rng(0)
        values = np.array([1.0, 5.0, 3.0, 2.0])
        y = np.array([0, 1, 0, 1])
        split = random_split_for_column(
            0, ColumnKind.NUMERIC, values, y, Impurity.GINI, 2, rng
        )
        assert split is not None
        assert 1.0 <= split.threshold < 5.0
        assert split.n_left + split.n_right == 4

    def test_numeric_constant_returns_none(self):
        rng = np.random.default_rng(0)
        values = np.full(4, 3.0)
        y = np.array([0, 1, 0, 1])
        assert (
            random_split_for_column(
                0, ColumnKind.NUMERIC, values, y, Impurity.GINI, 2, rng
            )
            is None
        )

    def test_categorical_singleton(self):
        rng = np.random.default_rng(7)
        codes = np.array([0, 1, 2, 0, 1, 2], dtype=np.int32)
        y = np.array([0, 1, 0, 0, 1, 0])
        split = random_split_for_column(
            0, ColumnKind.CATEGORICAL, codes, y, Impurity.GINI, 2, rng, 3
        )
        assert split is not None
        assert len(split.left_categories) == 1

    def test_deterministic_given_rng(self):
        values = np.array([1.0, 5.0, 3.0, 2.0])
        y = np.array([0, 1, 0, 1])
        s1 = random_split_for_column(
            0, ColumnKind.NUMERIC, values, y, Impurity.GINI, 2,
            np.random.default_rng(42),
        )
        s2 = random_split_for_column(
            0, ColumnKind.NUMERIC, values, y, Impurity.GINI, 2,
            np.random.default_rng(42),
        )
        assert s1.threshold == s2.threshold


class TestRouting:
    def test_training_rows_complete_partition(self):
        values = np.array([1.0, np.nan, 3.0, 4.0, np.nan])
        split = CandidateSplit(
            column=0,
            kind=ColumnKind.NUMERIC,
            score=0.0,
            n_left=3,
            n_right=2,
            threshold=2.0,
            n_missing=2,
            missing_to_left=True,
        )
        go_left = route_training_rows(values, split)
        assert go_left.tolist() == [True, True, False, False, True]

    def test_training_rows_categorical(self):
        values = np.array([0, 1, 2, -1], dtype=np.int32)
        split = CandidateSplit(
            column=0,
            kind=ColumnKind.CATEGORICAL,
            score=0.0,
            n_left=2,
            n_right=2,
            left_categories=frozenset({0, 2}),
            right_categories=frozenset({1}),
            missing_to_left=False,
        )
        go_left = route_training_rows(values, split)
        assert go_left.tolist() == [True, False, True, False]

    def test_test_value_missing_stops(self):
        split = CandidateSplit(
            column=0,
            kind=ColumnKind.NUMERIC,
            score=0.0,
            n_left=1,
            n_right=1,
            threshold=2.0,
        )
        assert route_test_value(np.nan, split) is None
        assert route_test_value(1.0, split) is True
        assert route_test_value(3.0, split) is False

    def test_test_value_unseen_category_stops(self):
        split = CandidateSplit(
            column=0,
            kind=ColumnKind.CATEGORICAL,
            score=0.0,
            n_left=1,
            n_right=1,
            left_categories=frozenset({0}),
            right_categories=frozenset({1}),
        )
        assert route_test_value(0, split) is True
        assert route_test_value(1, split) is False
        assert route_test_value(2, split) is None  # unseen in D_x
        assert route_test_value(-1, split) is None  # missing

    def test_describe(self):
        split = CandidateSplit(
            column=1,
            kind=ColumnKind.NUMERIC,
            score=0.0,
            n_left=1,
            n_right=1,
            threshold=40.0,
        )
        assert "<= 40" in split.describe("Age")


class TestSplitCounts:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.one_of(st.none(), st.integers(min_value=0, max_value=5)),
                st.integers(min_value=0, max_value=1),
            ),
            min_size=2,
            max_size=30,
        )
    )
    def test_counts_sum_to_n(self, pairs):
        """|I_xl| + |I_xr| == |I_x| — the delegate protocol's invariant."""
        values = np.array(
            [np.nan if v is None else float(v) for v, _ in pairs]
        )
        y = np.array([c for _, c in pairs])
        split = best_numeric_split(0, values, y, Impurity.GINI, 2)
        if split is None:
            return
        assert split.n_left + split.n_right == len(pairs)
        go_left = route_training_rows(values, split)
        assert int(go_left.sum()) == split.n_left
