"""Unit-level tests of master internals and run-level consistency checks."""

import numpy as np
import pytest

from repro.core import (
    SystemConfig,
    TreeConfig,
    TreeServer,
    decision_tree_job,
    random_forest_job,
)
from repro.core.master import _TreeBuild
from repro.core.scheduler import TreeTicket
from repro.core.jobs import decision_tree_job as dt_job
from repro.core.tasks import TreeContext
from repro.core.tree import TreeNode
from repro.datasets import SyntheticSpec, generate


def make_build() -> _TreeBuild:
    job = dt_job("j")
    ticket = TreeTicket(0, 0, 0, job.stages[0].trees[0])
    ctx = TreeContext(1, TreeConfig(), (0,), False, 10)
    return _TreeBuild(uid=1, ticket=ticket, job=job, ctx=ctx)


class TestTreeBuildAttach:
    def test_root_attach(self):
        build = make_build()
        root = TreeNode(1, 0, 10, 0.5)
        build.attach(1, root)
        assert build.nodes[1] is root

    def test_children_linked_by_heap_path(self):
        build = make_build()
        root = TreeNode(1, 0, 10, 0.5)
        build.attach(1, root)
        left = TreeNode(2, 1, 6, 0.3)
        right = TreeNode(3, 1, 4, 0.8)
        build.attach(2, left)
        build.attach(3, right)
        assert root.left is left
        assert root.right is right

    def test_grandchildren(self):
        build = make_build()
        build.attach(1, TreeNode(1, 0, 10, 0.5))
        build.attach(2, TreeNode(2, 1, 6, 0.3))
        build.attach(3, TreeNode(3, 1, 4, 0.8))
        build.attach(5, TreeNode(5, 2, 3, 0.1))  # right child of node 2
        assert build.nodes[2].right is build.nodes[5]
        assert build.nodes[2].left is None


@pytest.fixture(scope="module")
def medium_table():
    return generate(
        SyntheticSpec(
            name="m", n_rows=900, n_numeric=5, n_categorical=2,
            n_classes=3, planted_depth=5, noise=0.1, seed=71,
        )
    )


class TestRunConsistency:
    def test_node_count_matches_task_accounting(self, medium_table):
        """Internal nodes above tau = column tasks that split; subtree tasks
        cover whole subtrees; totals must reconcile with the final tree."""
        system = SystemConfig(
            n_workers=4, compers_per_worker=2, tau_subtree=64, tau_dfs=256
        )
        report = TreeServer(system).fit(
            medium_table, [decision_tree_job("dt", TreeConfig(max_depth=8))]
        )
        tree = report.tree("dt")
        counters = report.counters
        internal_above_tau = sum(
            1
            for node in tree.nodes()
            if node.split is not None and node.n_rows > 64
        )
        # Every internal node above tau was split via a column task; some
        # column tasks also resolved to leaves (no useful split).
        assert counters.column_tasks >= internal_above_tau
        assert counters.column_tasks <= internal_above_tau + counters.leaves_finalized
        # Subtree tasks exist and are dominated by node count.
        assert 0 < counters.subtree_tasks <= tree.n_nodes

    def test_dispatches_equal_tasks(self, medium_table):
        system = SystemConfig(n_workers=4, compers_per_worker=2).scaled_to(
            medium_table.n_rows
        )
        report = TreeServer(system).fit(
            medium_table, [decision_tree_job("dt", TreeConfig(max_depth=6))]
        )
        counters = report.counters
        assert counters.plans_dispatched == (
            counters.column_tasks + counters.subtree_tasks
        )

    def test_bplan_insertions_match_dispatches(self, medium_table):
        system = SystemConfig(n_workers=4, compers_per_worker=2).scaled_to(
            medium_table.n_rows
        )
        report = TreeServer(system).fit(
            medium_table,
            [random_forest_job("rf", 4, TreeConfig(max_depth=6), seed=1)],
        )
        counters = report.counters
        assert (
            counters.head_insertions + counters.tail_insertions
            == counters.plans_dispatched
        )

    def test_trees_completed_counter(self, medium_table):
        system = SystemConfig(n_workers=3, compers_per_worker=2).scaled_to(
            medium_table.n_rows
        )
        report = TreeServer(system).fit(
            medium_table,
            [random_forest_job("rf", 5, TreeConfig(max_depth=5), seed=2)],
        )
        assert report.counters.trees_completed == 5

    def test_deterministic_across_runs_with_metrics(self, medium_table):
        system = SystemConfig(n_workers=4, compers_per_worker=2).scaled_to(
            medium_table.n_rows
        )
        job = decision_tree_job("dt", TreeConfig(max_depth=6))
        r1 = TreeServer(system).fit(medium_table, [job])
        r2 = TreeServer(system).fit(medium_table, [job])
        assert r1.cluster.events_processed == r2.cluster.events_processed
        assert r1.counters.plans_dispatched == r2.counters.plans_dispatched
        m1 = [m.bytes_sent for m in r1.cluster.machines]
        m2 = [m.bytes_sent for m in r2.cluster.machines]
        assert m1 == m2

    def test_per_kind_bytes_cover_total(self, medium_table):
        system = SystemConfig(n_workers=4, compers_per_worker=2).scaled_to(
            medium_table.n_rows
        )
        report = TreeServer(system).fit(
            medium_table, [decision_tree_job("dt", TreeConfig(max_depth=6))]
        )
        assert sum(report.cluster.bytes_by_kind.values()) == pytest.approx(
            report.cluster.total_bytes
        )

    def test_scheduling_policies_same_model(self, medium_table):
        from repro.core import trees_equal

        trees = {}
        for policy in ("hybrid", "fifo", "lifo"):
            system = SystemConfig(
                n_workers=4,
                compers_per_worker=2,
                tau_subtree=64,
                tau_dfs=256,
                scheduling_policy=policy,
            )
            report = TreeServer(system).fit(
                medium_table, [decision_tree_job("dt", TreeConfig(max_depth=6))]
            )
            trees[policy] = report.tree("dt")
        assert trees_equal(trees["hybrid"], trees["fifo"])
        assert trees_equal(trees["hybrid"], trees["lifo"])
