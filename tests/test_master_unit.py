"""Unit-level tests of master internals and run-level consistency checks."""

import numpy as np
import pytest

from repro.core import (
    SystemConfig,
    TreeConfig,
    TreeServer,
    decision_tree_job,
    random_forest_job,
)
from repro.core.load_balance import TaskCharge
from repro.core.master import MasterActor, _MasterTaskState, _TableInfo, _TreeBuild
from repro.core.scheduler import TreeTicket
from repro.core.jobs import decision_tree_job as dt_job
from repro.core.tasks import MSG_REVOKE_TREE, ParentRef, PlanEntry, TreeContext
from repro.core.tree import TreeNode
from repro.data.schema import ProblemKind
from repro.datasets import SyntheticSpec, generate
from repro.runtime.local import LocalCluster


def make_build() -> _TreeBuild:
    job = dt_job("j")
    ticket = TreeTicket(0, 0, 0, job.stages[0].trees[0])
    ctx = TreeContext(1, TreeConfig(), (0,), False, 10)
    return _TreeBuild(uid=1, ticket=ticket, job=job, ctx=ctx)


class TestTreeBuildAttach:
    def test_root_attach(self):
        build = make_build()
        root = TreeNode(1, 0, 10, 0.5)
        build.attach(1, root)
        assert build.nodes[1] is root

    def test_children_linked_by_heap_path(self):
        build = make_build()
        root = TreeNode(1, 0, 10, 0.5)
        build.attach(1, root)
        left = TreeNode(2, 1, 6, 0.3)
        right = TreeNode(3, 1, 4, 0.8)
        build.attach(2, left)
        build.attach(3, right)
        assert root.left is left
        assert root.right is right

    def test_grandchildren(self):
        build = make_build()
        build.attach(1, TreeNode(1, 0, 10, 0.5))
        build.attach(2, TreeNode(2, 1, 6, 0.3))
        build.attach(3, TreeNode(3, 1, 4, 0.8))
        build.attach(5, TreeNode(5, 2, 3, 0.1))  # right child of node 2
        assert build.nodes[2].right is build.nodes[5]
        assert build.nodes[2].left is None


@pytest.fixture(scope="module")
def medium_table():
    return generate(
        SyntheticSpec(
            name="m", n_rows=900, n_numeric=5, n_categorical=2,
            n_classes=3, planted_depth=5, noise=0.1, seed=71,
        )
    )


class TestRunConsistency:
    def test_node_count_matches_task_accounting(self, medium_table):
        """Internal nodes above tau = column tasks that split; subtree tasks
        cover whole subtrees; totals must reconcile with the final tree."""
        system = SystemConfig(
            n_workers=4, compers_per_worker=2, tau_subtree=64, tau_dfs=256
        )
        report = TreeServer(system).fit(
            medium_table, [decision_tree_job("dt", TreeConfig(max_depth=8))]
        )
        tree = report.tree("dt")
        counters = report.counters
        internal_above_tau = sum(
            1
            for node in tree.nodes()
            if node.split is not None and node.n_rows > 64
        )
        # Every internal node above tau was split via a column task; some
        # column tasks also resolved to leaves (no useful split).
        assert counters.column_tasks >= internal_above_tau
        assert counters.column_tasks <= internal_above_tau + counters.leaves_finalized
        # Subtree tasks exist and are dominated by node count.
        assert 0 < counters.subtree_tasks <= tree.n_nodes

    def test_dispatches_equal_tasks(self, medium_table):
        system = SystemConfig(n_workers=4, compers_per_worker=2).scaled_to(
            medium_table.n_rows
        )
        report = TreeServer(system).fit(
            medium_table, [decision_tree_job("dt", TreeConfig(max_depth=6))]
        )
        counters = report.counters
        assert counters.plans_dispatched == (
            counters.column_tasks + counters.subtree_tasks
        )

    def test_bplan_insertions_match_dispatches(self, medium_table):
        system = SystemConfig(n_workers=4, compers_per_worker=2).scaled_to(
            medium_table.n_rows
        )
        report = TreeServer(system).fit(
            medium_table,
            [random_forest_job("rf", 4, TreeConfig(max_depth=6), seed=1)],
        )
        counters = report.counters
        assert (
            counters.head_insertions + counters.tail_insertions
            == counters.plans_dispatched
        )

    def test_trees_completed_counter(self, medium_table):
        system = SystemConfig(n_workers=3, compers_per_worker=2).scaled_to(
            medium_table.n_rows
        )
        report = TreeServer(system).fit(
            medium_table,
            [random_forest_job("rf", 5, TreeConfig(max_depth=5), seed=2)],
        )
        assert report.counters.trees_completed == 5

    def test_deterministic_across_runs_with_metrics(self, medium_table):
        system = SystemConfig(n_workers=4, compers_per_worker=2).scaled_to(
            medium_table.n_rows
        )
        job = decision_tree_job("dt", TreeConfig(max_depth=6))
        r1 = TreeServer(system).fit(medium_table, [job])
        r2 = TreeServer(system).fit(medium_table, [job])
        assert r1.cluster.events_processed == r2.cluster.events_processed
        assert r1.counters.plans_dispatched == r2.counters.plans_dispatched
        m1 = [m.bytes_sent for m in r1.cluster.machines]
        m2 = [m.bytes_sent for m in r2.cluster.machines]
        assert m1 == m2

    def test_per_kind_bytes_cover_total(self, medium_table):
        system = SystemConfig(n_workers=4, compers_per_worker=2).scaled_to(
            medium_table.n_rows
        )
        report = TreeServer(system).fit(
            medium_table, [decision_tree_job("dt", TreeConfig(max_depth=6))]
        )
        assert sum(report.cluster.bytes_by_kind.values()) == pytest.approx(
            report.cluster.total_bytes
        )

    def test_crash_revocation_scope_is_pinned(self, medium_table):
        """End-to-end: revoked_trees stays well below trees trained."""
        from repro.cluster.faults import CrashPlan

        system = SystemConfig(n_workers=5, compers_per_worker=2).scaled_to(
            medium_table.n_rows
        )
        report = TreeServer(system).fit(
            medium_table,
            [random_forest_job("rf", 6, TreeConfig(max_depth=5), seed=2)],
            crash_plans=[CrashPlan(machine_id=3, at_time=0.004)],
        )
        assert report.counters.recovered_workers == 1
        # The crash happens while the first pool of trees is in flight;
        # only those can be revoked, never the whole forest's history.
        assert 1 <= report.counters.revoked_trees <= 6

    def test_scheduling_policies_same_model(self, medium_table):
        from repro.core import trees_equal

        trees = {}
        for policy in ("hybrid", "fifo", "lifo"):
            system = SystemConfig(
                n_workers=4,
                compers_per_worker=2,
                tau_subtree=64,
                tau_dfs=256,
                scheduling_policy=policy,
            )
            report = TreeServer(system).fit(
                medium_table, [decision_tree_job("dt", TreeConfig(max_depth=6))]
            )
            trees[policy] = report.tree("dt")
        assert trees_equal(trees["hybrid"], trees["fifo"])
        assert trees_equal(trees["hybrid"], trees["lifo"])


# ----------------------------------------------------------------------
# crash-recovery revocation scope (the affected-trees-only guarantee)
# ----------------------------------------------------------------------
class RecordingTransport:
    """Transport stub that remembers every send."""

    def __init__(self) -> None:
        self.messages: list[tuple[int, int, str, object]] = []

    def send(self, src, dst, kind, payload, size_bytes) -> None:
        self.messages.append((src, dst, kind, payload))

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


def make_master(n_workers=3, n_columns=4, n_trees=2):
    """A live MasterActor over local shims, two trees admitted (uids 1, 2)."""
    system = SystemConfig(n_workers=n_workers, compers_per_worker=2)
    cost = TreeServer(system).cost
    transport = RecordingTransport()
    cluster = LocalCluster(n_workers, cost, transport)
    info = _TableInfo(
        n_rows=4000,
        n_columns=n_columns,
        problem=ProblemKind.CLASSIFICATION,
        n_classes=2,
    )
    holders = {
        c: [(c % n_workers) + 1, ((c + 1) % n_workers) + 1]
        for c in range(n_columns)
    }
    jobs = [random_forest_job("rf", n_trees, TreeConfig(max_depth=6), seed=0)]
    master = MasterActor(cluster, info, jobs, system, holders)
    master.start()
    cluster.engine.drain()
    return master, transport


def clear_in_flight(master) -> None:
    """Drop the real root tasks so tests can plant crafted task states."""
    master.ttask.clear()
    while master.bplan.pop() is not None:
        pass


def crafted_entry(master, uid, path=1, parent=None, n_rows=100):
    return PlanEntry(
        task=(uid, path),
        n_rows=n_rows,
        depth=0,
        parent=parent,
        ctx=master.builds[uid].ctx,
        is_subtree=False,
    )


def revoke_broadcasts(transport):
    return [
        (dst, payload.tree_uid)
        for (_, dst, kind, payload) in transport.messages
        if kind == MSG_REVOKE_TREE
    ]


class TestCrashRevocationScope:
    def test_revokes_only_the_tree_with_tasks_on_dead_worker(self):
        """ISSUE 4 headline pin: tree A's task sits on worker 1, tree B's
        on workers 2+3; crashing worker 1 revokes exactly one tree."""
        master, transport = make_master()
        uid_a, uid_b = sorted(master.builds)
        clear_in_flight(master)
        master.ttask[(uid_a, 1)] = _MasterTaskState(
            entry=crafted_entry(master, uid_a),
            charge=TaskCharge(),
            is_subtree=False,
            expected_workers=frozenset({1}),
        )
        master.ttask[(uid_b, 1)] = _MasterTaskState(
            entry=crafted_entry(master, uid_b),
            charge=TaskCharge(),
            is_subtree=False,
            expected_workers=frozenset({2, 3}),
        )
        transport.messages.clear()
        master.on_worker_crashed(1)
        assert master.counters.revoked_trees == 1
        assert master.counters.recovered_workers == 1
        assert uid_a not in master.builds
        assert uid_b in master.builds  # untouched tree keeps running
        assert (uid_b, 1) in master.ttask
        revokes = revoke_broadcasts(transport)
        assert {uid for _, uid in revokes} == {uid_a}
        assert {dst for dst, _ in revokes} == {2, 3}  # only live workers
        # Tree A was re-admitted under a fresh uid.
        assert any(uid > uid_b for uid in master.builds)
        assert 1 not in master.live_workers
        assert all(1 not in ws for ws in master.holders.values())

    def test_crash_with_no_involvement_revokes_nothing(self):
        master, transport = make_master()
        uid_a, uid_b = sorted(master.builds)
        clear_in_flight(master)
        master.ttask[(uid_b, 1)] = _MasterTaskState(
            entry=crafted_entry(master, uid_b),
            charge=TaskCharge(),
            is_subtree=False,
            expected_workers=frozenset({2, 3}),
        )
        transport.messages.clear()
        master.on_worker_crashed(1)
        assert master.counters.revoked_trees == 0
        assert master.counters.recovered_workers == 1
        assert revoke_broadcasts(transport) == []
        assert {uid_a, uid_b} <= set(master.builds)

    def test_queued_plan_with_dead_parent_delegate_revokes_its_tree(self):
        """A not-yet-dispatched child whose I_x store lived on the dead
        worker must revoke its tree even with no task state in flight."""
        master, transport = make_master()
        uid_a, uid_b = sorted(master.builds)
        clear_in_flight(master)
        master.bplan.insert(
            crafted_entry(
                master,
                uid_b,
                path=2,
                parent=ParentRef(task=(uid_b, 1), side=0, worker=1),
                n_rows=50,
            )
        )
        master.on_worker_crashed(1)
        assert master.counters.revoked_trees == 1
        assert uid_b not in master.builds
        assert uid_a in master.builds
        assert all(e.tree_uid != uid_b for e in master.bplan.entries())

    @pytest.mark.parametrize(
        "involvement",
        [
            dict(delegate=1),
            dict(is_subtree=True, key_worker=1),
            dict(is_subtree=True, key_worker=2, servers=frozenset({1, 3})),
            dict(charge=TaskCharge(entries=[(1, 0, 3.0)])),
        ],
        ids=["delegate", "key-worker", "column-server", "charge-sheet"],
    )
    def test_every_involvement_role_triggers_revocation(self, involvement):
        master, transport = make_master()
        uid_a, uid_b = sorted(master.builds)
        clear_in_flight(master)
        kwargs = dict(
            entry=crafted_entry(master, uid_a),
            charge=TaskCharge(),
            is_subtree=False,
            expected_workers=frozenset({2}),
        )
        kwargs.update(involvement)
        master.ttask[(uid_a, 1)] = _MasterTaskState(**kwargs)
        master.on_worker_crashed(1)
        assert master.counters.revoked_trees == 1
        assert uid_a not in master.builds
        assert uid_b in master.builds

    def test_parent_store_on_dead_worker_triggers_revocation(self):
        master, _ = make_master()
        uid_a, uid_b = sorted(master.builds)
        clear_in_flight(master)
        master.ttask[(uid_a, 2)] = _MasterTaskState(
            entry=crafted_entry(
                master,
                uid_a,
                path=2,
                parent=ParentRef(task=(uid_a, 1), side=0, worker=1),
            ),
            charge=TaskCharge(),
            is_subtree=False,
            expected_workers=frozenset({2, 3}),
        )
        master.on_worker_crashed(1)
        assert master.counters.revoked_trees == 1
        assert uid_a not in master.builds

    def test_column_losing_last_replica_is_a_hard_error(self):
        master, _ = make_master()
        master.holders[0] = [1]  # simulate k=1 on one column
        with pytest.raises(RuntimeError, match="lost all replicas"):
            master.on_worker_crashed(1)
