"""Tests for 1-D sequence multi-grained scanning."""

import numpy as np
import pytest

from repro.core import TreeConfig, train_tree
from repro.deepforest import LocalBackend
from repro.deepforest.sequences import (
    SequenceDataset,
    SequenceMGSConfig,
    SequenceScanner,
    generate_sequences,
    n_sequence_positions,
    sliding_windows_1d,
)
from repro.deepforest.cascade import features_to_table
from repro.evaluation import accuracy


class TestSlidingWindows1d:
    def test_position_arithmetic(self):
        assert n_sequence_positions(32, 4, 1) == 29
        assert n_sequence_positions(32, 8, 4) == 7
        with pytest.raises(ValueError):
            n_sequence_positions(4, 8, 1)

    def test_window_contents(self):
        seq = np.arange(8, dtype=float).reshape(1, 8)
        windows = sliding_windows_1d(seq, window=3, stride=2)
        np.testing.assert_array_equal(windows[0, 0], [0, 1, 2])
        np.testing.assert_array_equal(windows[0, 1], [2, 3, 4])
        np.testing.assert_array_equal(windows[0, 2], [4, 5, 6])

    def test_shapes(self):
        data = generate_sequences(6, length=20, n_classes=2, seed=1)
        windows = sliding_windows_1d(data.sequences, 5, 3)
        assert windows.shape == (6, n_sequence_positions(20, 5, 3), 5)


class TestSequenceDataset:
    def test_validation(self):
        with pytest.raises(ValueError):
            SequenceDataset(np.zeros((3, 4, 5)), np.zeros(3), 2)
        with pytest.raises(ValueError):
            SequenceDataset(np.zeros((3, 4)), np.zeros(2), 2)

    def test_generator_deterministic(self):
        a = generate_sequences(20, seed=3)
        b = generate_sequences(20, seed=3)
        np.testing.assert_array_equal(a.sequences, b.sequences)

    def test_balanced_classes(self):
        data = generate_sequences(40, n_classes=4, seed=2)
        counts = np.bincount(data.labels, minlength=4)
        assert counts.min() == counts.max() == 10


class TestSequenceScanner:
    def test_transform_dimensions(self):
        data = generate_sequences(30, length=24, n_classes=3, seed=5)
        config = SequenceMGSConfig(
            window_sizes=(4,), stride=4, n_forests=2, trees_per_forest=3,
            seed=1,
        )
        scanner = SequenceScanner(config, LocalBackend())
        scanner.fit(data)
        features = scanner.transform(data)
        positions = n_sequence_positions(24, 4, 4)
        assert features.shape == (30, positions * 2 * 3)

    def test_unfitted_rejected(self):
        scanner = SequenceScanner(SequenceMGSConfig(), LocalBackend())
        with pytest.raises(RuntimeError, match="not fitted"):
            scanner.transform(generate_sequences(5, seed=1))

    def test_representation_is_informative(self):
        """A tree on the MGS re-representation beats chance clearly —
        the motif structure is recoverable from window PMFs."""
        train = generate_sequences(160, length=32, n_classes=4, seed=8)
        test = generate_sequences(80, length=32, n_classes=4, seed=9)
        config = SequenceMGSConfig(
            window_sizes=(4, 8), stride=2, n_forests=2, trees_per_forest=5,
            seed=2,
        )
        scanner = SequenceScanner(config, LocalBackend())
        scanner.fit(train)
        train_features = scanner.transform(train)
        test_features = scanner.transform(test)
        train_table = features_to_table(train_features, train.labels, 4)
        test_table = features_to_table(test_features, test.labels, 4)
        tree = train_tree(train_table, TreeConfig(max_depth=10))
        acc = accuracy(test_table.target, tree.predict(test_table))
        assert acc > 0.5  # chance is 0.25
