"""Histogram split mode (``split_mode="hist"``): the promoted core path.

Pins the three guarantees of the equi-depth machinery promoted from
``repro.baselines.histogram`` into ``repro.core.histogram``:

* **Exact-collapse parity** — columns with at most ``max_bins`` distinct
  present values use their exact distinct values as thresholds, so hist
  mode reproduces the exact-mode tree bit-for-bit on such tables (the
  quantile-only prototype skipped distinct values on skewed data), with
  the exact scan's tie rules (first-minimum threshold within a column,
  lower column index across columns).
* **Node-local accounting** — every histogram statistic, including the
  missing-row count, comes from the node's own rows, so the delegate
  invariant ``|I_xl| + |I_xr| = |I_x|`` holds at every node.
* **Degenerate-column guards** — constant, all-NaN and quantile-collapsed
  columns yield an empty threshold set and a clean "no split", never an
  empty argmin or an IndexError, in the scalar and vectorized kernels.

Plus the distributed story: sim/mp/socket train hist-mode forests
bit-identical to the serial hist builder (shm on and off), and on the
socket backend with inline rows the hist data plane moves strictly fewer
pickled bytes per worker than exact mode on the same job.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import SystemConfig, TreeConfig, TreeServer, trees_equal
from repro.core.builder import train_tree
from repro.core.config import SPLIT_MODES
from repro.core.histogram import (
    best_binned_numeric_split,
    bin_indices,
    decode_bin_codes,
    encode_bin_codes,
    equi_depth_thresholds,
)
from repro.core.jobs import decision_tree_job, random_forest_job
from repro.data import ColumnKind, ColumnSpec, DataTable, ProblemKind, TableSchema
from repro.datasets import SyntheticSpec, generate
from repro.runtime import RuntimeOptions

CLF_CRITERION = TreeConfig().resolved_criterion(True)
REG_CRITERION = TreeConfig().resolved_criterion(False)


def _hist(config: TreeConfig, max_bins: int = 32) -> TreeConfig:
    from dataclasses import replace

    return replace(config, split_mode="hist", max_bins=max_bins)


def _numeric_table(
    columns: dict[str, np.ndarray], y: np.ndarray, problem=ProblemKind.CLASSIFICATION
) -> DataTable:
    specs = tuple(ColumnSpec(name, ColumnKind.NUMERIC) for name in columns)
    target = (
        ColumnSpec("y", ColumnKind.CATEGORICAL, ("neg", "pos"))
        if problem is ProblemKind.CLASSIFICATION
        else ColumnSpec("y", ColumnKind.NUMERIC)
    )
    schema = TableSchema(columns=specs, target=target, problem=problem)
    return DataTable(
        schema=schema,
        columns=[np.asarray(v, dtype=np.float64) for v in columns.values()],
        target=np.asarray(y),
    )


# ----------------------------------------------------------------------
# thresholds: exact collapse and degenerate guards
# ----------------------------------------------------------------------
class TestThresholds:
    def test_exact_collapse_uses_distinct_values(self):
        """<= max_bins distinct values -> thresholds are exactly the
        distinct values (all but the largest), even on skewed data where
        equi-depth quantile positions alone would skip values."""
        skewed = np.array([1.0, 2.0, 3.0] + [4.0] * 100)
        t = equi_depth_thresholds(skewed, max_bins=4)
        np.testing.assert_array_equal(t, [1.0, 2.0, 3.0])
        # The quantile positions all land on 4.0 here; without the
        # collapse rule this column would offer no cut at all.
        qs = np.quantile(skewed, np.linspace(0, 1, 5)[1:-1], method="lower")
        assert set(qs) == {4.0}

    def test_high_cardinality_caps_thresholds(self):
        values = np.arange(1000, dtype=np.float64)
        t = equi_depth_thresholds(values, max_bins=8)
        assert 0 < t.size <= 7
        assert np.all(np.diff(t) > 0)
        assert t.max() < values.max()

    def test_max_bins_validation(self):
        with pytest.raises(ValueError):
            equi_depth_thresholds(np.arange(10.0), max_bins=1)

    @pytest.mark.parametrize(
        "values",
        [
            np.full(50, 3.25),  # constant
            np.full(50, np.nan),  # all missing
            np.array([np.nan] * 30 + [7.0] * 20),  # constant-present
        ],
        ids=["constant", "all-nan", "constant-with-missing"],
    )
    def test_degenerate_columns_offer_no_split(self, values):
        t = equi_depth_thresholds(values, max_bins=8)
        assert t.size == 0
        bins = bin_indices(values, t)
        assert set(np.unique(bins)) <= {-1, 0}
        y = (np.arange(values.size) % 2).astype(np.float64)
        for criterion in (CLF_CRITERION, REG_CRITERION):
            assert (
                best_binned_numeric_split(0, bins, t, y, criterion, 2) is None
            )

    def test_quantile_collapse_onto_maximum(self):
        """A heavy upper atom can collapse every quantile onto the max;
        the guard drops those thresholds instead of producing a cut that
        sends all rows left."""
        values = np.array(list(np.linspace(0, 1, 20)) + [5.0] * 500)
        t = equi_depth_thresholds(values, max_bins=3)
        assert np.all(t < 5.0)

    @pytest.mark.parametrize("kernel", ["scalar", "vectorized"])
    def test_degenerate_columns_train_cleanly(self, kernel):
        """A table whose numeric columns are constant / all-NaN trains to
        a usable tree (splitting on the remaining real column) in both
        kernels, hist and exact."""
        rng = np.random.default_rng(5)
        signal = rng.integers(0, 6, size=120).astype(np.float64)
        table = _numeric_table(
            {
                "const": np.full(120, 2.0),
                "nan": np.full(120, np.nan),
                "signal": signal,
            },
            (signal > 2.5).astype(np.float64),
        )
        cfg = TreeConfig(seed=1, kernel=kernel, max_depth=4)
        exact = train_tree(table, cfg)
        hist = train_tree(table, _hist(cfg, max_bins=8))
        assert exact.root.split is not None
        assert exact.root.split.column == 2
        assert trees_equal(exact, hist)  # signal column collapses exactly


# ----------------------------------------------------------------------
# bucket codes: the subtree-task data plane
# ----------------------------------------------------------------------
class TestBinCodes:
    def test_codes_are_compact_and_route_identically(self):
        rng = np.random.default_rng(3)
        values = rng.normal(size=500)
        values[rng.random(500) < 0.1] = np.nan
        t = equi_depth_thresholds(values, max_bins=16)
        codes = encode_bin_codes(values, t)
        assert codes.dtype == np.int8  # <= 127 thresholds
        pseudo = decode_bin_codes(codes, t)
        # Pseudo-values rebin identically...
        np.testing.assert_array_equal(
            bin_indices(pseudo, t), bin_indices(values, t)
        )
        # ...and answer every candidate-threshold comparison identically.
        present = ~np.isnan(values)
        for cut in t:
            np.testing.assert_array_equal(
                pseudo[present] <= cut, values[present] <= cut
            )
        assert np.all(np.isnan(pseudo[~present]))

    def test_wide_books_use_wider_dtypes(self):
        values = np.arange(500.0)
        t = equi_depth_thresholds(values, max_bins=300)
        assert encode_bin_codes(values, t).dtype == np.int16


# ----------------------------------------------------------------------
# exact-collapse parity and tie rules
# ----------------------------------------------------------------------
class TestExactCollapseParity:
    @pytest.mark.parametrize("kernel", ["scalar", "vectorized"])
    @pytest.mark.parametrize("problem", ["clf", "reg"])
    def test_low_cardinality_table_is_bit_identical(self, kernel, problem):
        """Every column has <= max_bins distinct values -> the hist tree
        equals the exact tree bit-for-bit, kernels and problems alike."""
        spec = SyntheticSpec(
            "lowcard",
            400,
            5,
            2,
            problem=(
                ProblemKind.CLASSIFICATION
                if problem == "clf"
                else ProblemKind.REGRESSION
            ),
            missing_rate=0.05,
            seed=13,
        )
        table = generate(spec)
        # Quantize numeric columns to few distinct values.
        for idx, cspec in enumerate(table.schema.columns):
            if cspec.kind is ColumnKind.NUMERIC:
                col = table.columns[idx]
                present = ~np.isnan(col)
                col[present] = np.round(col[present] * 2.0) / 2.0
        if problem == "reg":
            # Bit-identical scores need order-independent label sums: the
            # exact scan accumulates row by row, the histogram per bin
            # then per cut.  Integer-valued labels make every partial sum
            # exact in float64, so association cannot change a score.
            table.target[:] = np.round(table.target)
        cfg = TreeConfig(seed=3, kernel=kernel)
        exact = train_tree(table, cfg)
        for max_bins in (64, 4096):
            hist = train_tree(table, _hist(cfg, max_bins=max_bins))
            assert trees_equal(exact, hist)
            assert exact.to_dict() == hist.to_dict()

    @pytest.mark.parametrize("kernel", ["scalar", "vectorized"])
    def test_skewed_distinct_values_survive_collapse(self, kernel):
        """The satellite bugfix: on skewed columns the quantile positions
        miss low-frequency distinct values; the collapse rule keeps them,
        so the hist tree still finds the minority cut."""
        rng = np.random.default_rng(11)
        col = np.array([0.0, 1.0, 2.0] * 5 + [9.0] * 285)
        rng.shuffle(col)
        y = (col < 1.5).astype(np.float64)
        noise = rng.normal(size=col.size)
        table = _numeric_table({"skew": col, "noise": noise}, y)
        cfg = TreeConfig(seed=2, kernel=kernel, max_depth=4)
        exact = train_tree(table, cfg)
        hist = train_tree(table, _hist(cfg, max_bins=8))
        assert trees_equal(exact, hist)
        assert hist.root.split is not None and hist.root.split.column == 0

    @pytest.mark.parametrize("kernel", ["scalar", "vectorized"])
    def test_cross_column_ties_pick_lower_column(self, kernel):
        """Duplicated columns score identically at every node; the strict
        ``(score, column)`` rule must route every split to the copy with
        the lower index — in hist mode exactly as in exact mode."""
        rng = np.random.default_rng(7)
        base = rng.normal(size=300)
        y = (base + 0.3 * rng.normal(size=300) > 0).astype(np.float64)
        table = _numeric_table({"a": base, "b": base.copy()}, y)
        cfg = _hist(TreeConfig(seed=1, kernel=kernel, max_depth=5), 16)
        tree = train_tree(table, cfg)

        def walk(node):
            if node is None:
                return
            if node.split is not None:
                assert node.split.column == 0
            walk(node.left)
            walk(node.right)

        assert tree.root.split is not None
        walk(tree.root)


# ----------------------------------------------------------------------
# node-local missing-row accounting
# ----------------------------------------------------------------------
class TestNodeLocalMissing:
    def test_statistics_come_from_the_nodes_own_rows(self):
        """Whole-table missing counts would break the delegate invariant:
        a node whose rows have no NaN must report ``n_missing == 0`` and
        children that partition exactly its rows, even when the rest of
        the table is full of NaNs in that column."""
        rng = np.random.default_rng(0)
        values = rng.normal(size=200)
        values[:80] = np.nan  # all misses outside the node
        y = (rng.random(200) > 0.5).astype(np.float64)
        thresholds = equi_depth_thresholds(values, 8)
        codes = bin_indices(values, thresholds)
        node_rows = np.arange(80, 200)
        split = best_binned_numeric_split(
            0, codes[node_rows], thresholds, y[node_rows], CLF_CRITERION, 2
        )
        assert split is not None
        assert split.n_missing == 0
        assert split.n_left + split.n_right == node_rows.size

        # And a node that does hold NaNs counts exactly its own.
        mixed_rows = np.arange(60, 200)  # 20 NaN rows inside
        split = best_binned_numeric_split(
            0, codes[mixed_rows], thresholds, y[mixed_rows], CLF_CRITERION, 2
        )
        assert split is not None
        assert split.n_missing == 20
        assert split.n_left + split.n_right == mixed_rows.size

    def test_distributed_column_tasks_preserve_the_invariant(self):
        """Forcing column-tasks at every node (tiny tau) runs the
        master-side ``|I_xl| + |I_xr| = |I_x|`` assertion against every
        shipped histogram; the result must equal the serial hist tree."""
        table = generate(
            SyntheticSpec("m", 300, 6, 1, missing_rate=0.15, seed=21)
        )
        cfg = _hist(TreeConfig(seed=4, max_depth=6), 8)
        serial = train_tree(table, cfg)
        system = SystemConfig(
            n_workers=3, compers_per_worker=2, tau_subtree=8, tau_dfs=8
        )
        report = TreeServer(system).fit(table, [decision_tree_job("dt", cfg)])
        assert trees_equal(serial, report.tree("dt"))


# ----------------------------------------------------------------------
# distributed determinism and the byte win
# ----------------------------------------------------------------------
class TestDistributedHist:
    @pytest.mark.parametrize("backend", ["sim", "mp", "socket"])
    @pytest.mark.parametrize("use_shm", [False, True])
    def test_backends_match_serial_hist(self, backend, use_shm):
        if backend == "sim" and use_shm:
            pytest.skip("shm is a real-process data plane")
        table = generate(
            SyntheticSpec("d", 400, 6, 2, missing_rate=0.05, seed=17)
        )
        cfg = _hist(TreeConfig(seed=9, max_depth=6), 16)
        job = random_forest_job("rf", 3, cfg, seed=9)
        serial = [
            train_tree(table, req.config, tree_id=i)
            for i, req in enumerate(job.stages[0].trees)
        ]
        options = RuntimeOptions(
            use_shm=use_shm,
            message_timeout_seconds=15.0,
            poll_interval_seconds=0.02,
        )
        report = TreeServer(
            SystemConfig(n_workers=3, compers_per_worker=2).scaled_to(
                table.n_rows
            ),
            backend=backend,
            runtime_options=options,
        ).fit(table, [job])
        for a, b in zip(serial, report.models["rf"]):
            assert trees_equal(a, b)
            assert a.to_dict() == b.to_dict()

    def test_hist_moves_fewer_bytes_than_exact_on_socket(self):
        """The headline data-plane win: identical jobs, identical wide
        numeric table, shm off (inline rows) — hist-mode workers pickle
        strictly fewer bytes than exact-mode workers, because subtree
        gathers ship int8 bucket codes instead of float64 columns.

        Columns are quantized below ``max_bins`` so the trained trees —
        and hence the subtree-*result* messages — are identical in both
        modes (exact-collapse parity), isolating the data-plane
        difference; every tree uses all columns, so every worker serves
        column slices to the other key workers."""
        rng = np.random.default_rng(31)
        columns = {
            f"c{i}": np.round(rng.normal(size=600) * 4.0) / 4.0
            for i in range(12)
        }
        y = (columns["c0"] + columns["c1"] > 0).astype(np.float64)
        table = _numeric_table(columns, y)
        max_distinct = max(len(np.unique(c)) for c in columns.values())
        system = SystemConfig(
            n_workers=3,
            compers_per_worker=2,
            column_replication=1,
            tau_subtree=100_000,  # gather-dominated: whole trees ship
            tau_dfs=100_000,
        )
        options = RuntimeOptions(
            use_shm=False,
            message_timeout_seconds=15.0,
            poll_interval_seconds=0.02,
        )
        cfg = TreeConfig(seed=6, max_depth=6)

        def run(config):
            jobs = [
                decision_tree_job(f"dt{i}", config.with_seed(i))
                for i in range(3)
            ]
            return TreeServer(
                system, backend="socket", runtime_options=options
            ).fit(table, jobs)

        exact = run(cfg)
        hist = run(_hist(cfg, max_distinct + 1))
        for i in range(3):  # collapse parity: identical result messages
            assert trees_equal(exact.tree(f"dt{i}"), hist.tree(f"dt{i}"))
        exact_pw = exact.cluster.transport["per_worker"]
        hist_pw = hist.cluster.transport["per_worker"]
        assert set(exact_pw) == set(hist_pw)
        for wid in exact_pw:
            assert (
                hist_pw[wid]["bytes_pickled"]
                < exact_pw[wid]["bytes_pickled"]
            ), f"worker {wid}: hist moved at least as many bytes as exact"


# ----------------------------------------------------------------------
# configuration validation
# ----------------------------------------------------------------------
class TestValidation:
    def test_split_modes_constant(self):
        assert SPLIT_MODES == ("exact", "hist")

    def test_tree_config_rejects_bad_values(self):
        with pytest.raises(ValueError):
            TreeConfig(split_mode="approx")
        with pytest.raises(ValueError):
            TreeConfig(split_mode="hist", max_bins=1)
        assert TreeConfig(split_mode="hist", max_bins=2).max_bins == 2

    def test_runtime_options_reject_bad_values(self):
        with pytest.raises(ValueError):
            RuntimeOptions(split_mode="approx")
        with pytest.raises(ValueError):
            RuntimeOptions(max_bins=1)
        assert RuntimeOptions(split_mode="hist", max_bins=8).max_bins == 8
        assert RuntimeOptions().split_mode is None  # keep per-job configs

    def test_runtime_options_override_applies_to_jobs(self):
        table = generate(SyntheticSpec("v", 250, 5, 0, seed=2))
        cfg = TreeConfig(seed=9, max_depth=5)
        serial_hist = train_tree(table, _hist(cfg, 16))
        report = TreeServer(
            SystemConfig(n_workers=2, compers_per_worker=2).scaled_to(
                table.n_rows
            ),
            runtime_options=RuntimeOptions(split_mode="hist", max_bins=16),
        ).fit(table, [decision_tree_job("dt", cfg)])
        assert trees_equal(serial_hist, report.tree("dt"))

    def test_cli_rejects_bad_split_flags(self, tmp_path, capsys):
        from repro.cli import main
        from repro.data.io import write_csv

        table = generate(SyntheticSpec("c", 60, 3, 0, seed=1))
        csv_path = tmp_path / "t.csv"
        write_csv(table, csv_path)
        base = [
            "train", "--csv", str(csv_path), "--target", "label",
            "--model-dir", str(tmp_path / "m"),
        ]
        with pytest.raises(SystemExit):
            main(base + ["--split-mode", "approx"])
        assert main(base + ["--max-bins", "1"]) == 2
