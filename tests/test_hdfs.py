"""Tests for the simulated HDFS and the Fig. 13 grid layout."""

import os

import numpy as np
import pytest

from repro.data import write_csv
from repro.data.schema import ProblemKind
from repro.datasets import SyntheticSpec, generate
from repro.hdfs import HdfsError, LayoutConfig, SimHdfs, TableLayout, put_csv


@pytest.fixture
def table():
    return generate(
        SyntheticSpec(
            name="hdfs",
            n_rows=500,
            n_numeric=7,
            n_categorical=4,
            n_classes=3,
            planted_depth=3,
            missing_rate=0.05,
            seed=31,
        )
    )


class TestSimHdfs:
    def test_create_write_read(self):
        fs = SimHdfs()
        with fs.create("/a/b") as w:
            w.write(b"hello ")
            w.write(b"world")
        with fs.open("/a/b") as r:
            assert r.read() == b"hello world"

    def test_double_create_rejected(self):
        fs = SimHdfs()
        fs.create("/x").close()
        with pytest.raises(HdfsError, match="exists"):
            fs.create("/x")
        fs.create("/x", overwrite=True).close()  # but overwrite works

    def test_open_missing_rejected(self):
        fs = SimHdfs()
        with pytest.raises(HdfsError, match="no such file"):
            fs.open("/nope")

    def test_write_after_close_rejected(self):
        fs = SimHdfs()
        writer = fs.create("/y")
        writer.close()
        with pytest.raises(HdfsError, match="closed"):
            writer.write(b"late")

    def test_connection_accounting(self):
        fs = SimHdfs()
        fs.create("/a").close()
        fs.create("/b").close()
        fs.open("/a").read()
        fs.open("/a").read()
        assert fs.stats.connections_opened == 4  # 2 creates + 2 opens
        assert fs.stats.files_created == 2

    def test_listdir_and_delete(self):
        fs = SimHdfs()
        fs.create("/d/1").close()
        fs.create("/d/2").close()
        fs.create("/e/3").close()
        assert fs.listdir("/d") == ["/d/1", "/d/2"]
        fs.delete("/d/1")
        assert fs.listdir("/d") == ["/d/2"]
        with pytest.raises(HdfsError):
            fs.delete("/d/1")

    def test_file_size(self):
        fs = SimHdfs()
        with fs.create("/s") as w:
            w.write(b"12345")
        assert fs.file_size("/s") == 5


class TestTableLayout:
    def test_round_trip(self, table):
        fs = SimHdfs()
        layout = TableLayout(
            fs, "/t", LayoutConfig(columns_per_group=3, rows_per_group=128)
        )
        layout.save(table)
        back = layout.load_table()
        for i in range(table.n_columns):
            a, b = table.column(i), back.column(i)
            if a.dtype == np.float64:
                np.testing.assert_array_equal(np.isnan(a), np.isnan(b))
                np.testing.assert_array_equal(a[~np.isnan(a)], b[~np.isnan(b)])
            else:
                np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(table.target, back.target)
        assert back.problem is table.problem

    def test_grid_arithmetic(self, table):
        layout = TableLayout(
            SimHdfs(), "/t", LayoutConfig(columns_per_group=4, rows_per_group=200)
        )
        assert layout.n_column_groups(11) == 3
        assert layout.n_row_groups(500) == 3
        assert layout.columns_of_group(2, 11) == [8, 9, 10]
        assert layout.row_range(2, 500) == (400, 500)
        with pytest.raises(ValueError):
            layout.columns_of_group(3, 11)
        with pytest.raises(ValueError):
            layout.row_range(3, 500)

    def test_column_group_load(self, table):
        fs = SimHdfs()
        layout = TableLayout(
            fs, "/t", LayoutConfig(columns_per_group=4, rows_per_group=128)
        )
        layout.save(table)
        fs.reset_stats()
        cols = layout.load_column_group(1)
        assert sorted(cols) == [4, 5, 6, 7]
        for idx, arr in cols.items():
            assert len(arr) == table.n_rows
        # One connection per row-group file in the grid column.
        assert fs.stats.connections_opened == layout.n_row_groups(table.n_rows)

    def test_row_group_load(self, table):
        fs = SimHdfs()
        layout = TableLayout(
            fs, "/t", LayoutConfig(columns_per_group=4, rows_per_group=128)
        )
        layout.save(table)
        part = layout.load_row_group(1)
        assert part.n_rows == 128
        np.testing.assert_array_equal(part.target, table.target[128:256])

    def test_schema_persisted(self, table):
        fs = SimHdfs()
        layout = TableLayout(
            fs, "/t", LayoutConfig(columns_per_group=5, rows_per_group=100)
        )
        layout.save(table)
        fresh = TableLayout(fs, "/t")  # no config: read it from the store
        schema = fresh.schema()
        assert schema.n_columns == table.n_columns
        assert fresh.config.columns_per_group == 5
        assert fresh.n_rows() == table.n_rows

    def test_estimated_load_monotone_in_grouping(self, table):
        estimates = []
        for group in (1, 4, 11):
            fs = SimHdfs()
            layout = TableLayout(
                fs, "/t", LayoutConfig(columns_per_group=group, rows_per_group=128)
            )
            layout.save(table)
            estimates.append(layout.estimated_load_seconds(5e-3, 125e6))
        assert estimates[0] > estimates[1] > estimates[2]


class TestPutProgram:
    def test_put_round_trip(self, table, tmp_path):
        csv_path = os.path.join(tmp_path, "t.csv")
        write_csv(table, csv_path)
        fs = SimHdfs()
        layout = put_csv(
            fs,
            csv_path,
            "/up/t",
            target=table.schema.target.name,
            layout=LayoutConfig(columns_per_group=3, rows_per_group=64),
        )
        back = layout.load_table()
        assert back.n_rows == table.n_rows
        # The sniffer assigns codes by first appearance, so compare decoded
        # category *names*, not raw codes.
        original_names = [
            table.schema.target.categories[c] for c in table.target
        ]
        back_names = [back.schema.target.categories[c] for c in back.target]
        assert back_names == original_names
        assert back.problem is table.problem

    def test_put_streams_row_groups(self, table, tmp_path):
        csv_path = os.path.join(tmp_path, "t.csv")
        write_csv(table, csv_path)
        fs = SimHdfs()
        layout = put_csv(
            fs,
            csv_path,
            "/up/t",
            target=table.schema.target.name,
            layout=LayoutConfig(columns_per_group=100, rows_per_group=100),
        )
        # 500 rows / 100 per group -> 5 row-group files per column group.
        assert layout.n_row_groups(500) == 5
        assert fs.exists("/up/t/cg0/rg4")

    def test_put_regression(self, small_regression, tmp_path):
        csv_path = os.path.join(tmp_path, "r.csv")
        write_csv(small_regression, csv_path)
        fs = SimHdfs()
        layout = put_csv(fs, csv_path, "/up/r", target="target")
        back = layout.load_table()
        assert back.problem is ProblemKind.REGRESSION
        np.testing.assert_allclose(back.target, small_regression.target)

    def test_put_missing_target_rejected(self, table, tmp_path):
        csv_path = os.path.join(tmp_path, "t.csv")
        write_csv(table, csv_path)
        with pytest.raises(ValueError, match="target"):
            put_csv(SimHdfs(), csv_path, "/up/t", target="no_such_column")
