"""Tests for TreeServer-trained gradient boosting."""

import numpy as np
import pytest

from repro.core import SystemConfig
from repro.data.schema import ProblemKind
from repro.datasets import SyntheticSpec, generate, train_test
from repro.ensemble import GBDTConfig, TreeServerGBDT
from repro.evaluation import accuracy, rmse


def small_system() -> SystemConfig:
    return SystemConfig(n_workers=3, compers_per_worker=2)


class TestGBDTConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            GBDTConfig(n_rounds=0)
        with pytest.raises(ValueError):
            GBDTConfig(learning_rate=0.0)
        with pytest.raises(ValueError):
            GBDTConfig(learning_rate=1.5)


class TestRegressionBoosting:
    def test_improves_with_rounds(self, small_regression):
        table = small_regression
        short = TreeServerGBDT(
            GBDTConfig(n_rounds=2, max_depth=3), small_system()
        ).fit(table)
        long = TreeServerGBDT(
            GBDTConfig(n_rounds=15, max_depth=3), small_system()
        ).fit(table)
        r_short = rmse(table.target, short.model.predict(table))
        r_long = rmse(table.target, long.model.predict(table))
        assert r_long < r_short

    def test_beats_constant_baseline(self, small_regression):
        table = small_regression
        report = TreeServerGBDT(
            GBDTConfig(n_rounds=8, max_depth=4), small_system()
        ).fit(table)
        pred = report.model.predict(table)
        baseline = rmse(
            table.target, np.full(table.n_rows, table.target.mean())
        )
        assert rmse(table.target, pred) < 0.8 * baseline

    def test_per_round_times_accumulate(self, small_regression):
        report = TreeServerGBDT(
            GBDTConfig(n_rounds=5, max_depth=3), small_system()
        ).fit(small_regression)
        assert len(report.per_round_seconds) == 5
        assert report.sim_seconds == pytest.approx(
            sum(report.per_round_seconds)
        )
        assert report.model.n_trees == 5


class TestBinaryBoosting:
    @pytest.fixture(scope="class")
    def binary_data(self):
        spec = SyntheticSpec(
            name="gb", n_rows=600, n_numeric=6, n_categorical=1,
            n_classes=2, planted_depth=4, noise=0.08, seed=61,
        )
        return train_test(spec)

    def test_learns(self, binary_data):
        train, test = binary_data
        report = TreeServerGBDT(
            GBDTConfig(n_rounds=12, max_depth=4), small_system()
        ).fit(train)
        acc = accuracy(test.target, report.model.predict(test))
        majority = np.bincount(test.target).max() / test.n_rows
        assert acc > majority + 0.03

    def test_proba_shape_and_range(self, binary_data):
        train, test = binary_data
        report = TreeServerGBDT(
            GBDTConfig(n_rounds=4, max_depth=3), small_system()
        ).fit(train)
        proba = report.model.predict_proba(test)
        assert proba.shape == (test.n_rows, 2)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-12)
        assert (proba >= 0).all()

    def test_multiclass_rejected(self, small_mixed_classification):
        with pytest.raises(ValueError, match="binary"):
            TreeServerGBDT(GBDTConfig(n_rounds=1), small_system()).fit(
                small_mixed_classification
            )

    def test_regression_model_has_no_proba(self, small_regression):
        report = TreeServerGBDT(
            GBDTConfig(n_rounds=2, max_depth=3), small_system()
        ).fit(small_regression)
        with pytest.raises(ValueError):
            report.model.predict_proba(small_regression)

    def test_deterministic(self, binary_data):
        train, _ = binary_data
        a = TreeServerGBDT(
            GBDTConfig(n_rounds=3, max_depth=3, seed=5), small_system()
        ).fit(train)
        b = TreeServerGBDT(
            GBDTConfig(n_rounds=3, max_depth=3, seed=5), small_system()
        ).fit(train)
        np.testing.assert_array_equal(
            a.model.predict(train), b.model.predict(train)
        )
        assert a.sim_seconds == b.sim_seconds
