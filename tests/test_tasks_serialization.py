"""Transport safety: every protocol message survives pickling bit-for-bit.

The multiprocess runtime ships the typed messages of ``repro.core.tasks``
through ``multiprocessing`` queues, which pickle them.  This suite pins
that property independently of any runtime: every message dataclass (and
every dataclass that rides inside one — parent refs, tree contexts, node
stats, candidate splits) round-trips ``pickle -> unpickle`` into a deeply
equal object, numpy payloads included.

An exhaustiveness check keeps the list honest: adding a new ``*Msg``
dataclass to ``tasks.py`` without registering it in
``MESSAGE_DATACLASSES`` (and giving it a factory here) fails the suite.
"""

from __future__ import annotations

import dataclasses
import inspect
import pickle

import numpy as np
import pytest

from repro.core import tasks
from repro.core.config import TreeConfig, TreeKind
from repro.core.splits import CandidateSplit
from repro.core.tasks import MESSAGE_DATACLASSES
from repro.data.schema import ColumnKind, ProblemKind
from repro.data.shared import ShmSlice


def deep_equal(a, b) -> bool:
    """Structural equality that treats numpy arrays by value and dtype."""
    if type(a) is not type(b):
        return False
    if isinstance(a, np.ndarray):
        if a.dtype != b.dtype or a.shape != b.shape:
            return False
        equal_nan = np.issubdtype(a.dtype, np.floating)
        return bool(np.array_equal(a, b, equal_nan=equal_nan))
    if dataclasses.is_dataclass(a) and not isinstance(a, type):
        return all(
            deep_equal(getattr(a, f.name), getattr(b, f.name))
            for f in dataclasses.fields(a)
        )
    if isinstance(a, dict):
        return set(a) == set(b) and all(deep_equal(a[k], b[k]) for k in a)
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(
            deep_equal(x, y) for x, y in zip(a, b)
        )
    return a == b


# ----------------------------------------------------------------------
# instance factories (one representative, payload-rich value per class)
# ----------------------------------------------------------------------
CTX = tasks.TreeContext(
    tree_uid=7,
    config=TreeConfig(max_depth=5, tree_kind=TreeKind.EXTRA, seed=13),
    candidate_columns=(0, 2, 5),
    bootstrap=True,
    n_table_rows=1000,
)
PARENT = tasks.ParentRef(task=(7, 2), side=1, worker=3)
SPLIT_NUM = CandidateSplit(
    column=2,
    kind=ColumnKind.NUMERIC,
    score=0.125,
    n_left=40,
    n_right=60,
    threshold=1.5,
    n_missing=3,
    missing_to_left=False,
)
SPLIT_CAT = CandidateSplit(
    column=5,
    kind=ColumnKind.CATEGORICAL,
    score=0.25,
    n_left=10,
    n_right=90,
    left_categories=frozenset({1, 4}),
    right_categories=frozenset({0, 2, 3}),
)
STATS_CLS = tasks.NodeStatsPayload.from_labels(
    np.array([0, 1, 1, 2, 2, 2]), ProblemKind.CLASSIFICATION, 3
)
STATS_REG = tasks.NodeStatsPayload.from_labels(
    np.array([0.5, 1.25, -2.0]), ProblemKind.REGRESSION, 0
)

MESSAGE_FACTORIES: dict[type, object] = {
    tasks.ColumnPlanMsg: tasks.ColumnPlanMsg(
        task=(7, 2), columns=(0, 2), parent=PARENT, ctx=CTX, n_rows=100,
        depth=1,
    ),
    tasks.SubtreePlanMsg: tasks.SubtreePlanMsg(
        task=(7, 3), parent=PARENT, ctx=CTX, n_rows=50, depth=1,
        local_columns=(0,), server_map={2: (2,), 4: (5,)},
    ),
    tasks.ColumnResultMsg: tasks.ColumnResultMsg(
        task=(7, 2), worker=3, splits=[SPLIT_NUM, None, SPLIT_CAT],
        stats=STATS_CLS,
    ),
    tasks.SplitConfirmMsg: tasks.SplitConfirmMsg(task=(7, 2), split=SPLIT_CAT),
    tasks.SplitDoneMsg: tasks.SplitDoneMsg(
        task=(7, 2), left_stats=STATS_CLS, right_stats=STATS_REG
    ),
    tasks.ExpectFetchesMsg: tasks.ExpectFetchesMsg(task=(7, 2), side=0, count=2),
    tasks.RowRequestMsg: tasks.RowRequestMsg(
        parent_task=(7, 1), side=1, requester=4, tag=("column", (7, 3))
    ),
    tasks.RowResponseMsg: tasks.RowResponseMsg(
        tag=("key", (7, 3)),
        row_ids=np.array([5, 9, 11, 200_000_000_000], dtype=np.int64),
    ),
    tasks.RowResponseShmMsg: tasks.RowResponseShmMsg(
        tag=("column", (7, 3)),
        ref=ShmSlice(
            segment="repro-shm-cafe01-w2-s0", offset=4096, count=700
        ),
    ),
    tasks.ColumnRequestMsg: tasks.ColumnRequestMsg(
        task=(7, 3), columns=(2, 5), parent=None, ctx=CTX, key_worker=1
    ),
    tasks.ColumnResponseMsg: tasks.ColumnResponseMsg(
        task=(7, 3),
        server=2,
        columns=(2, 5),
        arrays=[
            np.array([0.5, np.nan, -1.75]),
            np.array([3, -1, 0], dtype=np.int32),
        ],
    ),
    tasks.SubtreeResultMsg: tasks.SubtreeResultMsg(
        task=(7, 3),
        worker=1,
        subtree={"node_id": 3, "depth": 1, "n_rows": 50, "children": []},
        n_nodes=5,
    ),
    tasks.TaskDeleteMsg: tasks.TaskDeleteMsg(task=(7, 2)),
    tasks.RevokeTreeMsg: tasks.RevokeTreeMsg(tree_uid=7),
    tasks.TreeCompletedSync: tasks.TreeCompletedSync(
        job_name="rf", tree_index=4, tree={"root": {"node_id": 1}}
    ),
    tasks.MasterFailoverMsg: tasks.MasterFailoverMsg(
        new_master_id=9, min_live_uid=12
    ),
    tasks.ShutdownMsg: tasks.ShutdownMsg(reason="done"),
    tasks.WorkerStatsMsg: tasks.WorkerStatsMsg(
        worker=3,
        outstanding={"column_tasks": 0, "delegate_stores": 0},
        mem_task_bytes=0,
        mem_task_peak=4096,
        mem_base_bytes=1 << 20,
        messages_handled=17,
        messages_sent=21,
        ops_executed=1e6,
        bytes_by_kind={"column_result": 2048},
        bytes_pickled=1 << 16,
        shm_bytes_mapped=3 << 20,
        coalesced_batches=9,
    ),
    tasks.WorkerErrorMsg: tasks.WorkerErrorMsg(
        worker=2, error="ValueError: boom", traceback="Traceback ..."
    ),
    tasks.WorkerHelloMsg: tasks.WorkerHelloMsg(
        worker_id=2,
        protocol_version=tasks.SOCKET_PROTOCOL_VERSION,
        table_hash="deadbeef" * 8,
        host_id="host-a/0123abcd",
        pid=4711,
    ),
    tasks.WorkerWelcomeMsg: tasks.WorkerWelcomeMsg(
        ok=True,
        n_workers=3,
        held_columns=(0, 2),
        host_map={0: "host-a/0123abcd", 1: "host-a/0123abcd", 2: "host-b/ffee"},
        shm_prefix="repro-shm-cafe01",
        shm_threshold_bytes=8192,
        coalesce_max_messages=32,
        poll_interval_seconds=0.05,
        cost=None,
    ),
}

#: Dataclasses that travel *inside* messages, pinned with the same rigor.
SUPPORT_FACTORIES: dict[type, object] = {
    tasks.ParentRef: PARENT,
    tasks.TreeContext: CTX,
    tasks.NodeStatsPayload: STATS_CLS,
    CandidateSplit: SPLIT_NUM,
    tasks.RootRows: tasks.RootRows(ctx=CTX),
    tasks.PlanEntry: tasks.PlanEntry(
        task=(7, 2), n_rows=100, depth=1, parent=PARENT, ctx=CTX,
        is_subtree=False,
    ),
    tasks.TaskCounters: tasks.TaskCounters(
        column_tasks=3, extra={"extra_retries": 2}
    ),
    ShmSlice: ShmSlice(
        segment="repro-shm-cafe01-w1-s3", offset=0, count=1, dtype="int64"
    ),
}

ALL_FACTORIES = {**MESSAGE_FACTORIES, **SUPPORT_FACTORIES}


def test_registry_is_exhaustive():
    """Every ``*Msg``-shaped dataclass in tasks.py is registered and covered."""
    declared = set(MESSAGE_DATACLASSES)
    in_module = {
        obj
        for _, obj in inspect.getmembers(tasks, inspect.isclass)
        if dataclasses.is_dataclass(obj)
        and obj.__module__ == tasks.__name__
        and (obj.__name__.endswith("Msg") or obj.__name__.endswith("Sync"))
    }
    assert in_module == declared, (
        "MESSAGE_DATACLASSES out of sync with tasks.py: "
        f"missing={sorted(c.__name__ for c in in_module - declared)} "
        f"stale={sorted(c.__name__ for c in declared - in_module)}"
    )
    assert declared == set(MESSAGE_FACTORIES), (
        "round-trip factories out of sync with MESSAGE_DATACLASSES: "
        f"uncovered={sorted(c.__name__ for c in declared - set(MESSAGE_FACTORIES))}"
    )


@pytest.mark.parametrize(
    "cls", sorted(ALL_FACTORIES, key=lambda c: c.__name__),
    ids=lambda c: c.__name__,
)
def test_pickle_round_trip(cls):
    original = ALL_FACTORIES[cls]
    clone = pickle.loads(pickle.dumps(original))
    assert type(clone) is cls
    assert deep_equal(original, clone), f"{cls.__name__} did not round-trip"


def test_deep_equal_detects_numpy_differences():
    """The comparison helper itself must not be vacuous."""
    a = tasks.RowResponseMsg(tag=("c", (1, 1)), row_ids=np.array([1, 2]))
    b = tasks.RowResponseMsg(tag=("c", (1, 1)), row_ids=np.array([1, 3]))
    c = tasks.RowResponseMsg(
        tag=("c", (1, 1)), row_ids=np.array([1, 2], dtype=np.int32)
    )
    assert not deep_equal(a, b)
    assert not deep_equal(a, c)  # same values, different dtype
    assert deep_equal(a, pickle.loads(pickle.dumps(a)))


def test_root_rows_materialize_after_round_trip():
    """A pickled RootRows regenerates the identical deterministic row set."""
    original = tasks.RootRows(ctx=CTX)
    clone = pickle.loads(pickle.dumps(original))
    np.testing.assert_array_equal(
        original.materialize(), clone.materialize()
    )
