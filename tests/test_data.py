"""Tests for the tabular data substrate: schemas, tables, CSV IO."""

import io

import numpy as np
import pytest

from repro.data import (
    MISSING_CODE,
    ColumnKind,
    ColumnSpec,
    DataTable,
    ProblemKind,
    SchemaBuilder,
    TableSchema,
    read_csv,
    table_to_csv_text,
    write_csv,
)


class TestColumnSpec:
    def test_numeric_has_no_categories(self):
        spec = ColumnSpec("a", ColumnKind.NUMERIC)
        assert spec.n_categories == 0

    def test_numeric_rejects_categories(self):
        with pytest.raises(ValueError):
            ColumnSpec("a", ColumnKind.NUMERIC, ("x",))

    def test_code_of_known_and_unknown(self):
        spec = ColumnSpec("c", ColumnKind.CATEGORICAL, ("x", "y"))
        assert spec.code_of("y") == 1
        assert spec.code_of("zzz") == -1


class TestTableSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            TableSchema(
                (ColumnSpec("a", ColumnKind.NUMERIC),),
                ColumnSpec("a", ColumnKind.NUMERIC),
                ProblemKind.REGRESSION,
            )

    def test_regression_requires_numeric_target(self):
        with pytest.raises(ValueError):
            TableSchema(
                (ColumnSpec("a", ColumnKind.NUMERIC),),
                ColumnSpec("y", ColumnKind.CATEGORICAL, ("a", "b")),
                ProblemKind.REGRESSION,
            )

    def test_classification_requires_categorical_target(self):
        with pytest.raises(ValueError):
            TableSchema(
                (ColumnSpec("a", ColumnKind.NUMERIC),),
                ColumnSpec("y", ColumnKind.NUMERIC),
                ProblemKind.CLASSIFICATION,
            )

    def test_column_index_lookup(self):
        schema = (
            SchemaBuilder()
            .add_numeric("a")
            .add_categorical("b", ["x", "y"])
            .set_target_classes("y", ["0", "1"])
            .build()
        )
        assert schema.column_index("b") == 1
        with pytest.raises(KeyError):
            schema.column_index("nope")
        assert schema.numeric_indices() == [0]
        assert schema.categorical_indices() == [1]

    def test_builder_requires_target(self):
        with pytest.raises(ValueError):
            SchemaBuilder().add_numeric("a").build()


class TestDataTable:
    def test_shape_validation(self, tiny_classification):
        table = tiny_classification
        assert table.n_rows == 10
        assert table.n_columns == 4
        assert table.n_classes == 2

    def test_column_length_mismatch_rejected(self):
        schema = (
            SchemaBuilder()
            .add_numeric("a")
            .set_target_classes("y", ["0", "1"])
            .build()
        )
        with pytest.raises(ValueError):
            DataTable(schema, [np.zeros(3)], np.zeros(4, dtype=np.int32))

    def test_categorical_code_out_of_range_rejected(self):
        schema = (
            SchemaBuilder()
            .add_categorical("c", ["x", "y"])
            .set_target_classes("y", ["0", "1"])
            .build()
        )
        with pytest.raises(ValueError, match="code"):
            DataTable(
                schema,
                [np.array([0, 5], dtype=np.int32)],
                np.zeros(2, dtype=np.int32),
            )

    def test_take_preserves_order(self, tiny_classification):
        sub = tiny_classification.take([3, 0, 7])
        assert sub.n_rows == 3
        assert sub.column(0).tolist() == [32.0, 24.0, 42.0]
        assert sub.target.tolist() == [1, 0, 0]

    def test_select_columns(self, tiny_classification):
        sub = tiny_classification.select_columns([0, 3])
        assert sub.n_columns == 2
        assert sub.schema.columns[1].name == "income"
        np.testing.assert_array_equal(sub.target, tiny_classification.target)

    def test_split_train_test_partitions_rows(self, small_mixed_classification):
        table = small_mixed_classification
        train, test = table.split_train_test(0.25, seed=1)
        assert train.n_rows + test.n_rows == table.n_rows
        assert test.n_rows == round(table.n_rows * 0.25)

    def test_split_train_test_deterministic(self, small_mixed_classification):
        a1, b1 = small_mixed_classification.split_train_test(0.3, seed=9)
        a2, b2 = small_mixed_classification.split_train_test(0.3, seed=9)
        np.testing.assert_array_equal(a1.target, a2.target)
        np.testing.assert_array_equal(b1.column(0), b2.column(0))

    def test_split_fraction_validation(self, tiny_classification):
        with pytest.raises(ValueError):
            tiny_classification.split_train_test(0.0)
        with pytest.raises(ValueError):
            tiny_classification.split_train_test(1.0)

    def test_missing_mask_numeric_and_categorical(self, small_regression):
        table = small_regression
        num_idx = table.schema.numeric_indices()[0]
        cat_idx = table.schema.categorical_indices()[0]
        np.testing.assert_array_equal(
            table.missing_mask(num_idx), np.isnan(table.column(num_idx))
        )
        np.testing.assert_array_equal(
            table.missing_mask(cat_idx), table.column(cat_idx) == MISSING_CODE
        )

    def test_nbytes_positive(self, tiny_classification):
        assert tiny_classification.nbytes() > 0


class TestCsvIO:
    def test_round_trip(self, tiny_classification):
        text = table_to_csv_text(tiny_classification)
        back = read_csv(io.StringIO(text), target="default")
        assert back.n_rows == tiny_classification.n_rows
        assert back.n_columns == tiny_classification.n_columns
        np.testing.assert_array_equal(back.target, tiny_classification.target)
        np.testing.assert_allclose(back.column(0), tiny_classification.column(0))

    def test_round_trip_with_missing(self, small_regression):
        text = table_to_csv_text(small_regression)
        back = read_csv(io.StringIO(text), target="target")
        assert back.problem is ProblemKind.REGRESSION
        for i in range(back.n_columns):
            np.testing.assert_array_equal(
                back.missing_mask(i), small_regression.missing_mask(i)
            )

    def test_kind_inference(self):
        csv_text = "a,b,y\n1.5,x,0\n2.5,y,1\n,z,0\n"
        table = read_csv(io.StringIO(csv_text), target="y")
        assert table.schema.columns[0].kind is ColumnKind.NUMERIC
        assert table.schema.columns[1].kind is ColumnKind.CATEGORICAL
        assert np.isnan(table.column(0)[2])

    def test_regression_inferred_from_numeric_target(self):
        table = read_csv(io.StringIO("a,y\n1,0.5\n2,0.7\n"), target="y")
        assert table.problem is ProblemKind.REGRESSION

    def test_classification_forced(self):
        table = read_csv(
            io.StringIO("a,y\n1,0\n2,1\n"),
            target="y",
            problem=ProblemKind.CLASSIFICATION,
        )
        assert table.problem is ProblemKind.CLASSIFICATION
        assert table.n_classes == 2

    def test_missing_target_column_rejected(self):
        with pytest.raises(ValueError, match="target"):
            read_csv(io.StringIO("a,b\n1,2\n"), target="y")

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError, match="fields"):
            read_csv(io.StringIO("a,y\n1,2\n3\n"), target="y")

    def test_empty_file_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            read_csv(io.StringIO(""), target="y")

    def test_missing_target_values_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            read_csv(
                io.StringIO("a,y\n1,x\n2,\n"),
                target="y",
                problem=ProblemKind.CLASSIFICATION,
            )

    def test_write_csv_to_path(self, tmp_path, tiny_classification):
        path = tmp_path / "t.csv"
        write_csv(tiny_classification, path)
        back = read_csv(path, target="default")
        assert back.n_rows == 10
