"""Tests for the serving subsystem: compiler, kernel, registry, server.

The heart of this file is the parity suite: the flat-array kernel must
reproduce node-based descent *bit for bit* — across problem kinds,
categorical columns, missing values, unseen category codes and every
truncation depth — because the serving layer silently replaces the node
engine everywhere (harness, distributed predictor, CLI).
"""

import io
import threading

import numpy as np
import pytest

from repro.cli import main
from repro.core import SystemConfig, TreeConfig, train_tree
from repro.core.persistence import (
    fingerprint_trees,
    model_fingerprint_hdfs,
    model_fingerprint_local,
    save_model_hdfs,
    save_model_local,
)
from repro.core.predictor import predict_from_hdfs
from repro.data import ProblemKind, write_csv
from repro.datasets import SyntheticSpec, generate
from repro.ensemble import ForestModel
from repro.hdfs import SimHdfs
from repro.serving import (
    BatchPredictor,
    FlatForest,
    ModelRegistry,
    PredictionServer,
    ServerConfig,
    compile_forest,
    compile_tree,
    load_compiled_hdfs,
    load_compiled_local,
)
from repro.serving.server import QueueFullError


def make_table(seed, problem=ProblemKind.CLASSIFICATION, missing=0.0, rows=200):
    return generate(
        SyntheticSpec(
            name="t",
            n_rows=rows,
            n_numeric=3,
            n_categorical=2,
            n_classes=3,
            problem=problem,
            planted_depth=4,
            noise=0.1,
            missing_rate=missing,
            seed=seed,
        )
    )


def make_forest(table, n_trees=3, max_depth=6, seed=0):
    return ForestModel(
        [
            train_tree(table, TreeConfig(max_depth=max_depth, seed=seed + i))
            for i in range(n_trees)
        ]
    )


class TestCompiler:
    def test_layout_invariants(self, small_mixed_classification):
        tree = train_tree(small_mixed_classification, TreeConfig(max_depth=6))
        flat = compile_tree(tree)
        assert flat.n_nodes == tree.n_nodes
        assert flat.max_depth == tree.depth
        # BFS layout: depths are sorted ascending, root first.
        assert np.all(np.diff(flat.depth) >= 0)
        assert flat.depth[0] == 0
        # Leaves have no children or split column; inner nodes have both.
        leaves = flat.feature < 0
        assert np.all(flat.left[leaves] == -1)
        assert np.all(flat.right[leaves] == -1)
        assert np.all(flat.left[~leaves] >= 0)
        # Every node carries a PMF (Appendix D: descents may stop anywhere).
        np.testing.assert_allclose(flat.predictions.sum(axis=1), 1.0)
        assert flat.nbytes() > 0

    def test_truncated_is_prefix_slice(self, small_mixed_classification):
        tree = train_tree(small_mixed_classification, TreeConfig(max_depth=7))
        flat = compile_tree(tree)
        for d in range(flat.max_depth + 1):
            cut = flat.truncated(d)
            assert cut.n_nodes <= flat.n_nodes
            assert cut.max_depth <= d
            # Prefix cut: surviving arrays match the full tree's prefix.
            np.testing.assert_array_equal(
                cut.predictions, flat.predictions[: cut.n_nodes]
            )
            # Cut-level nodes became leaves.
            assert np.all(cut.feature[cut.depth >= d] == -1)

    def test_truncated_rejects_negative(self, small_mixed_classification):
        tree = train_tree(small_mixed_classification, TreeConfig(max_depth=3))
        with pytest.raises(ValueError):
            compile_tree(tree).truncated(-1)

    def test_forest_accounting(self, small_mixed_classification):
        forest = make_forest(small_mixed_classification, n_trees=4)
        flat = compile_forest(forest)
        assert flat.n_trees == 4
        assert flat.total_nodes() == forest.total_nodes()
        assert flat.output_width == forest.n_classes
        assert flat.nbytes() == sum(t.nbytes() for t in flat.trees)

    def test_empty_forest_rejected(self):
        with pytest.raises(ValueError):
            FlatForest(trees=[], problem=ProblemKind.CLASSIFICATION)


class TestParity:
    """Flat kernel == node descent, bit for bit, everywhere."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_classification_proba(self, seed):
        table = make_table(seed, missing=0.1 if seed % 2 else 0.0)
        forest = make_forest(table, n_trees=3, seed=seed)
        predictor = BatchPredictor(compile_forest(forest))
        np.testing.assert_array_equal(
            predictor.predict_proba(table), forest.predict_proba(table)
        )
        np.testing.assert_array_equal(
            predictor.predict(table), forest.predict(table)
        )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_regression_values(self, seed):
        table = make_table(
            seed + 10,
            problem=ProblemKind.REGRESSION,
            missing=0.1 if seed % 2 else 0.0,
        )
        forest = make_forest(table, n_trees=3, seed=seed)
        predictor = BatchPredictor(compile_forest(forest))
        np.testing.assert_array_equal(
            predictor.predict_values(table), forest.predict_values(table)
        )

    def test_every_truncation_depth(self, small_mixed_classification):
        table = small_mixed_classification
        forest = make_forest(table, n_trees=2, max_depth=8)
        flat = compile_forest(forest)
        predictor = BatchPredictor(flat)
        for d in range(1, flat.max_depth() + 1):
            np.testing.assert_array_equal(
                predictor.predict_proba(table, max_depth=d),
                forest.predict_proba(table, max_depth=d),
            )
            # Compile-time slicing == run-time truncation.
            np.testing.assert_array_equal(
                BatchPredictor(flat.truncated(d)).predict_proba(table),
                predictor.predict_proba(table, max_depth=d),
            )

    def test_truncation_depth_regression(self, small_regression):
        forest = make_forest(small_regression, n_trees=2, max_depth=6)
        predictor = BatchPredictor(compile_forest(forest))
        for d in range(1, 7):
            np.testing.assert_array_equal(
                predictor.predict_values(small_regression, max_depth=d),
                forest.predict_values(small_regression, max_depth=d),
            )

    def test_unseen_categories_stop_at_node(self):
        """Codes absent from training data route like the node engine."""
        full = make_table(7, rows=400)
        cat_col = full.columns[3]  # first categorical column
        held_out = int(cat_col.max())
        train_rows = np.flatnonzero(cat_col != held_out)
        train = full.take(train_rows)
        assert len(train_rows) < full.n_rows  # the code really is held out
        forest = make_forest(train, n_trees=3, seed=7)
        predictor = BatchPredictor(compile_forest(forest))
        np.testing.assert_array_equal(
            predictor.predict_proba(full), forest.predict_proba(full)
        )

    def test_missing_codes_stop_at_node(self):
        table = make_table(11, missing=0.25)
        assert any(
            np.any(col == -1) for col in table.columns[3:]
        ) or any(np.any(np.isnan(col)) for col in table.columns[:3])
        forest = make_forest(table, n_trees=2, seed=11)
        predictor = BatchPredictor(compile_forest(forest))
        np.testing.assert_array_equal(
            predictor.predict_proba(table), forest.predict_proba(table)
        )

    def test_single_tree_matches_per_row_descent(self, tiny_classification):
        table = tiny_classification
        tree = train_tree(table, TreeConfig(max_depth=4))
        predictor = BatchPredictor(compile_forest(tree))
        np.testing.assert_array_equal(
            predictor.predict_proba(table), tree.predict_proba(table)
        )

    def test_forest_compiled_convenience(self, small_mixed_classification):
        forest = make_forest(small_mixed_classification, n_trees=2)
        np.testing.assert_array_equal(
            forest.compiled().predict_proba(small_mixed_classification),
            forest.predict_proba(small_mixed_classification),
        )

    def test_matrix_entry_point(self, small_mixed_classification):
        """A dense float64 row-matrix predicts like the typed table."""
        table = small_mixed_classification
        forest = make_forest(table, n_trees=2)
        predictor = BatchPredictor(compile_forest(forest))
        matrix = np.column_stack(
            [np.asarray(col, dtype=np.float64) for col in table.columns]
        )
        np.testing.assert_array_equal(
            predictor.predict_matrix(matrix), forest.predict(table)
        )
        np.testing.assert_array_equal(
            predictor.predict_proba_matrix(matrix), forest.predict_proba(table)
        )

    def test_proba_on_regression_rejected(self, small_regression):
        forest = make_forest(small_regression, n_trees=1)
        predictor = BatchPredictor(compile_forest(forest))
        with pytest.raises(ValueError):
            predictor.predict_proba(small_regression)
        with pytest.raises(ValueError):
            BatchPredictor(
                compile_forest(make_forest(make_table(0)))
            ).predict_values(make_table(0))


class TestFingerprints:
    def test_stable_across_persisted_forms(
        self, small_mixed_classification, tmp_path
    ):
        """In-memory, local-dir and DFS forms share one content hash."""
        forest = make_forest(small_mixed_classification)
        in_memory = fingerprint_trees(forest.trees)
        save_model_local(tmp_path / "m", "rf", forest.trees)
        assert model_fingerprint_local(tmp_path / "m") == in_memory
        fs = SimHdfs()
        save_model_hdfs(fs, "/models/rf", "rf", forest.trees)
        assert model_fingerprint_hdfs(fs, "/models/rf") == in_memory

    def test_name_and_path_do_not_matter(
        self, small_mixed_classification, tmp_path
    ):
        forest = make_forest(small_mixed_classification)
        save_model_local(tmp_path / "a", "first", forest.trees)
        save_model_local(tmp_path / "b", "second", forest.trees)
        assert model_fingerprint_local(
            tmp_path / "a"
        ) == model_fingerprint_local(tmp_path / "b")

    def test_different_models_differ(self, small_mixed_classification):
        a = make_forest(small_mixed_classification, max_depth=3)
        b = make_forest(small_mixed_classification, max_depth=6)
        assert fingerprint_trees(a.trees) != fingerprint_trees(b.trees)


class TestRegistry:
    def test_get_or_compile_hits_once(self, small_mixed_classification):
        registry = ModelRegistry(capacity=4)
        forest = make_forest(small_mixed_classification)
        entry, hit = registry.get_or_compile(forest)
        assert not hit
        again, hit = registry.get_or_compile(forest)
        assert hit
        assert again is entry
        assert registry.stats.hits == 1
        assert registry.stats.misses == 1

    def test_lru_eviction_order(self, small_mixed_classification):
        registry = ModelRegistry(capacity=2)
        models = [
            make_forest(small_mixed_classification, n_trees=1, max_depth=d)
            for d in (2, 3, 4)
        ]
        keys = [fingerprint_trees(m.trees) for m in models]
        registry.put(keys[0], models[0])
        registry.put(keys[1], models[1])
        registry.get(keys[0])  # refresh 0: now 1 is least recent
        registry.put(keys[2], models[2])
        assert keys[0] in registry
        assert keys[1] not in registry
        assert keys[2] in registry
        assert registry.stats.evictions == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            ModelRegistry(capacity=0)
        with pytest.raises(ValueError):
            ModelRegistry(max_bytes=0)

    def test_byte_budget_eviction(self, small_mixed_classification):
        models = [
            make_forest(small_mixed_classification, n_trees=1, max_depth=d)
            for d in (2, 3, 4)
        ]
        keys = [fingerprint_trees(m.trees) for m in models]
        sizes = {}
        probe = ModelRegistry(capacity=None)
        for key, model in zip(keys, models):
            sizes[key] = probe.put(key, model).nbytes()
        # Budget fits the two largest models but not all three.
        budget = sizes[keys[1]] + sizes[keys[2]]
        assert budget < sum(sizes.values())

        registry = ModelRegistry(capacity=None, max_bytes=budget)
        for key, model in zip(keys, models):
            registry.put(key, model)
        assert keys[0] not in registry  # LRU fell to byte pressure
        assert keys[1] in registry and keys[2] in registry
        assert registry.total_bytes() == budget
        assert registry.total_bytes() <= registry.max_bytes
        assert registry.stats.evictions == 1
        assert registry.stats.bytes_evicted == sizes[keys[0]]
        assert registry.stats.peak_bytes == sum(sizes.values())

    def test_oversized_entry_still_served(self, small_mixed_classification):
        """One model over budget evicts everything else but itself."""
        forest = make_forest(small_mixed_classification)
        key = fingerprint_trees(forest.trees)
        registry = ModelRegistry(capacity=None, max_bytes=1)
        entry = registry.put(key, forest)
        assert key in registry  # the newest entry is never evicted
        assert registry.total_bytes() == entry.nbytes() > 1
        small = make_forest(small_mixed_classification, n_trees=1, max_depth=2)
        registry.put(fingerprint_trees(small.trees), small)
        assert key not in registry  # now it is the LRU and over budget
        assert len(registry) == 1

    def test_replacement_does_not_leak_bytes(
        self, small_mixed_classification
    ):
        forest = make_forest(small_mixed_classification)
        key = fingerprint_trees(forest.trees)
        registry = ModelRegistry()
        first = registry.put(key, forest).nbytes()
        registry.put(key, forest)  # same key: replaces, must not double-count
        assert registry.total_bytes() == first
        registry.clear()
        assert registry.total_bytes() == 0 and len(registry) == 0

    def test_load_compiled_local_skips_reload(
        self, small_mixed_classification, tmp_path
    ):
        registry = ModelRegistry()
        forest = make_forest(small_mixed_classification)
        save_model_local(tmp_path / "m", "rf", forest.trees)
        entry, hit = load_compiled_local(tmp_path / "m", registry)
        assert not hit
        again, hit = load_compiled_local(tmp_path / "m", registry)
        assert hit
        assert again is entry
        np.testing.assert_array_equal(
            entry.predictor.predict(small_mixed_classification),
            forest.predict(small_mixed_classification),
        )

    def test_load_compiled_hdfs_shares_line_with_local(
        self, small_mixed_classification, tmp_path
    ):
        """The same content arriving via DFS hits the local-dir cache line."""
        registry = ModelRegistry()
        forest = make_forest(small_mixed_classification)
        save_model_local(tmp_path / "m", "rf", forest.trees)
        fs = SimHdfs()
        save_model_hdfs(fs, "/m", "other-name", forest.trees)
        _, hit = load_compiled_local(tmp_path / "m", registry)
        assert not hit
        _, hit = load_compiled_hdfs(fs, "/m", registry)
        assert hit

    def test_explicit_empty_registry_is_used(self, small_mixed_classification):
        """An empty (falsy-length) registry must not fall back to default."""
        registry = ModelRegistry()
        forest = make_forest(small_mixed_classification, n_trees=1)
        fs = SimHdfs()
        save_model_hdfs(fs, "/m", "rf", forest.trees)
        load_compiled_hdfs(fs, "/m", registry)
        assert len(registry) == 1


class TestPredictorCaching:
    def test_model_load_charged_once(self, small_mixed_classification):
        table = small_mixed_classification
        forest = make_forest(table)
        fs = SimHdfs()
        save_model_hdfs(fs, "/m", "rf", forest.trees)
        registry = ModelRegistry()
        system = SystemConfig(n_workers=3, compers_per_worker=2)
        first = predict_from_hdfs(fs, "/m", table, system, registry=registry)
        assert not first.cache_hit
        assert first.model_load_seconds > 0
        second = predict_from_hdfs(fs, "/m", table, system, registry=registry)
        assert second.cache_hit
        assert second.model_load_seconds == 0.0
        assert second.sim_seconds < first.sim_seconds
        np.testing.assert_array_equal(first.predictions, second.predictions)
        np.testing.assert_array_equal(
            first.predictions, forest.predict(table)
        )


class GatedPredictor(BatchPredictor):
    """Predictor whose kernel blocks until released (dispatcher control)."""

    def __init__(self, forest):
        super().__init__(forest)
        self.entered = threading.Event()
        self.release = threading.Event()

    def predict_proba_matrix(self, matrix, max_depth=None):
        self.entered.set()
        assert self.release.wait(5.0)
        return super().predict_proba_matrix(matrix, max_depth)


class TestServer:
    @pytest.fixture
    def compiled(self, small_mixed_classification):
        forest = make_forest(small_mixed_classification, n_trees=2)
        return compile_forest(forest), forest, small_mixed_classification

    def _matrix(self, table):
        return np.column_stack(
            [np.asarray(col, dtype=np.float64) for col in table.columns]
        )

    def test_predict_parity(self, compiled):
        flat, forest, table = compiled
        matrix = self._matrix(table)
        with PredictionServer(flat) as server:
            labels = server.predict(matrix)
            proba = server.predict_proba(matrix[:17])
        np.testing.assert_array_equal(labels, forest.predict(table))
        np.testing.assert_array_equal(
            proba, forest.predict_proba(table)[:17]
        )

    def test_requests_are_sliced_back(self, compiled):
        """Coalesced requests each get exactly their own rows back."""
        flat, forest, table = compiled
        matrix = self._matrix(table)
        expected = forest.predict(table)
        config = ServerConfig(max_batch_size=64, max_delay_seconds=0.05)
        with PredictionServer(flat, config) as server:
            futures = [
                server.submit(matrix[i : i + 3])
                for i in range(0, len(matrix) - 3, 3)
            ]
            for i, future in enumerate(futures):
                np.testing.assert_array_equal(
                    future.result(timeout=10.0),
                    expected[3 * i : 3 * i + 3],
                )
        report = server.report()
        assert report.n_requests == len(futures)
        assert report.n_rows == 3 * len(futures)
        # Micro-batching actually coalesced: fewer kernel calls than requests.
        assert report.n_batches < report.n_requests
        assert report.avg_batch_rows > 3

    def test_deadline_flushes_partial_batch(self, compiled):
        flat, forest, table = compiled
        config = ServerConfig(max_batch_size=100_000, max_delay_seconds=0.02)
        with PredictionServer(flat, config) as server:
            row = self._matrix(table)[:1]
            # Far fewer rows than the batch size: only the deadline flushes.
            label = server.predict(row, timeout=5.0)
        np.testing.assert_array_equal(label, forest.predict(table)[:1])

    def test_queue_overflow_sheds_load(self, compiled):
        flat, _, table = compiled
        predictor = GatedPredictor(flat)
        config = ServerConfig(
            max_batch_size=1, max_delay_seconds=0.0, queue_capacity=2
        )
        row = self._matrix(table)[:1]
        with PredictionServer(predictor, config) as server:
            first = server.submit(row, proba=True)
            assert predictor.entered.wait(5.0)  # dispatcher is busy serving
            server.submit(row, proba=True)
            server.submit(row, proba=True)  # queue now full (capacity 2)
            with pytest.raises(QueueFullError):
                server.submit(row, proba=True)
            assert server.stats.rejected == 1
            predictor.release.set()
            first.result(timeout=5.0)
        assert server.report().rejected == 1

    def test_stop_drains_admitted_requests(self, compiled):
        flat, forest, table = compiled
        matrix = self._matrix(table)
        config = ServerConfig(max_batch_size=4096, max_delay_seconds=0.5)
        server = PredictionServer(flat, config).start()
        futures = [server.submit(matrix[i : i + 1]) for i in range(20)]
        server.stop()
        assert not server.running
        expected = forest.predict(table)
        for i, future in enumerate(futures):
            assert future.done()
            np.testing.assert_array_equal(
                future.result(timeout=0), expected[i : i + 1]
            )

    def test_accepts_node_model_via_registry(self, compiled):
        _, forest, table = compiled
        registry = ModelRegistry()
        matrix = self._matrix(table)
        with PredictionServer(forest, registry=registry) as server:
            labels = server.predict(matrix)
        np.testing.assert_array_equal(labels, forest.predict(table))
        assert len(registry) == 1

    def test_regression_server(self, small_regression):
        forest = make_forest(small_regression, n_trees=2)
        matrix = self._matrix(small_regression)
        with PredictionServer(compile_forest(forest)) as server:
            values = server.predict(matrix)
            with pytest.raises(ValueError):
                server.submit(matrix[:1], proba=True)
        np.testing.assert_array_equal(
            values, forest.predict_values(small_regression)
        )

    def test_truncated_serving(self, compiled):
        flat, forest, table = compiled
        config = ServerConfig(max_depth=2)
        with PredictionServer(flat, config) as server:
            labels = server.predict(self._matrix(table))
        np.testing.assert_array_equal(
            labels, forest.predict(table, max_depth=2)
        )

    def test_kernel_errors_propagate_to_futures(self, compiled):
        flat, _, table = compiled

        class BrokenPredictor(BatchPredictor):
            def predict_proba_matrix(self, matrix, max_depth=None):
                raise RuntimeError("kernel exploded")

        with PredictionServer(BrokenPredictor(flat)) as server:
            future = server.submit(self._matrix(table)[:1])
            with pytest.raises(RuntimeError, match="kernel exploded"):
                future.result(timeout=5.0)

    def test_submit_requires_running_server(self, compiled):
        flat, _, table = compiled
        server = PredictionServer(flat)
        with pytest.raises(RuntimeError, match="not running"):
            server.submit(self._matrix(table)[:1])

    def test_result_timeout(self, compiled):
        flat, _, table = compiled
        predictor = GatedPredictor(flat)
        with PredictionServer(predictor) as server:
            future = server.submit(self._matrix(table)[:1], proba=True)
            with pytest.raises(TimeoutError):
                future.result(timeout=0.01)
            predictor.release.set()
            future.result(timeout=5.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServerConfig(max_batch_size=0)
        with pytest.raises(ValueError):
            ServerConfig(max_delay_seconds=-1)
        with pytest.raises(ValueError):
            ServerConfig(queue_capacity=0)

    def test_report_shapes(self, compiled):
        flat, _, table = compiled
        with PredictionServer(flat) as server:
            server.predict(self._matrix(table)[:8])
            report = server.report()
        assert report.n_rows == 8
        assert report.rows_per_second > 0
        assert report.p99_latency_ms >= report.p50_latency_ms >= 0
        summary = report.summary()
        assert "rows/s" in summary and "p50" in summary
        assert report.to_dict()["n_rows"] == 8


class TestCascadeCompile:
    def _fit_cascade(self):
        from repro.deepforest import CascadeConfig, CascadeForest, LocalBackend

        rng = np.random.default_rng(3)
        n, n_classes = 80, 3
        grain_features = {
            3: rng.normal(size=(n, 6)),
            5: rng.normal(size=(n, 4)),
        }
        labels = rng.integers(0, n_classes, size=n)
        cascade = CascadeForest(
            CascadeConfig(n_layers=2, n_forests=2, trees_per_forest=2, seed=9),
            LocalBackend(),
        )
        previous = None
        for layer in range(2):
            _, previous = cascade.fit_layer(
                layer, grain_features, labels, n_classes, previous
            )
        return cascade, grain_features

    def test_compiled_cascade_parity(self):
        cascade, grain_features = self._fit_cascade()
        compiled = cascade.compiled()
        node_layers = cascade.predict_proba_per_layer(grain_features)
        flat_layers = compiled.predict_proba_per_layer(grain_features)
        assert len(flat_layers) == len(node_layers)
        for node_pmf, flat_pmf in zip(node_layers, flat_layers):
            np.testing.assert_array_equal(flat_pmf, node_pmf)
        np.testing.assert_array_equal(
            compiled.predict(grain_features), cascade.predict(grain_features)
        )
        assert compiled.total_nodes() > 0

    def test_unfitted_cascade_rejected(self):
        from repro.deepforest import CascadeConfig, CascadeForest, LocalBackend
        from repro.serving.compiler import compile_cascade

        with pytest.raises(ValueError, match="not fitted"):
            compile_cascade(CascadeForest(CascadeConfig(), LocalBackend()))


class TestCliServing:
    @pytest.fixture
    def trained(self, small_mixed_classification, tmp_path):
        csv_path = tmp_path / "data.csv"
        write_csv(small_mixed_classification, csv_path)
        model_dir = tmp_path / "model"
        code = main(
            [
                "train", "--csv", str(csv_path), "--target", "label",
                "--model-dir", str(model_dir), "--forest", "2",
                "--max-depth", "5", "--workers", "2", "--compers", "2",
            ],
            out=io.StringIO(),
        )
        assert code == 0
        return csv_path, model_dir, tmp_path

    def _run(self, argv):
        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    def test_predict_engines_agree(self, trained):
        csv_path, model_dir, tmp_path = trained
        flat_out = tmp_path / "flat.csv"
        node_out = tmp_path / "node.csv"
        code, output = self._run(
            [
                "predict", "--csv", str(csv_path), "--target", "label",
                "--model-dir", str(model_dir), "--out", str(flat_out),
            ]
        )
        assert code == 0
        assert "engine=flat" in output
        code, output = self._run(
            [
                "predict", "--csv", str(csv_path), "--target", "label",
                "--model-dir", str(model_dir), "--out", str(node_out),
                "--engine", "node",
            ]
        )
        assert code == 0
        assert "engine=node" in output
        assert flat_out.read_text() == node_out.read_text()

    def test_serve_matches_predict(self, trained):
        csv_path, model_dir, tmp_path = trained
        predict_out = tmp_path / "preds.csv"
        serve_out = tmp_path / "served.csv"
        self._run(
            [
                "predict", "--csv", str(csv_path), "--target", "label",
                "--model-dir", str(model_dir), "--out", str(predict_out),
            ]
        )
        code, output = self._run(
            [
                "serve", "--csv", str(csv_path), "--target", "label",
                "--model-dir", str(model_dir), "--out", str(serve_out),
                "--request-rows", "7", "--batch-size", "32",
                "--max-delay-ms", "1",
            ]
        )
        assert code == 0
        assert "rows/s" in output
        assert serve_out.read_text() == predict_out.read_text()
