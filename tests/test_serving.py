"""Tests for the serving subsystem: compiler, kernel, registry, server.

The heart of this file is the parity suite: the flat-array kernel must
reproduce node-based descent *bit for bit* — across problem kinds,
categorical columns, missing values, unseen category codes and every
truncation depth — because the serving layer silently replaces the node
engine everywhere (harness, distributed predictor, CLI).
"""

import io
import threading
import time

import numpy as np
import pytest

from repro.cli import main
from repro.core import SystemConfig, TreeConfig, train_tree
from repro.core.persistence import (
    fingerprint_trees,
    model_fingerprint_hdfs,
    model_fingerprint_local,
    save_model_hdfs,
    save_model_local,
)
from repro.core.predictor import predict_from_hdfs
from repro.data import ProblemKind, write_csv
from repro.datasets import SyntheticSpec, generate
from repro.ensemble import ForestModel
from repro.hdfs import SimHdfs
from repro.serving import (
    BatchPredictor,
    FlatForest,
    ModelRegistry,
    PredictionServer,
    ServerConfig,
    compile_forest,
    compile_tree,
    load_compiled_hdfs,
    load_compiled_local,
)
from repro.serving.server import QueueFullError


def make_table(seed, problem=ProblemKind.CLASSIFICATION, missing=0.0, rows=200):
    return generate(
        SyntheticSpec(
            name="t",
            n_rows=rows,
            n_numeric=3,
            n_categorical=2,
            n_classes=3,
            problem=problem,
            planted_depth=4,
            noise=0.1,
            missing_rate=missing,
            seed=seed,
        )
    )


def make_forest(table, n_trees=3, max_depth=6, seed=0):
    return ForestModel(
        [
            train_tree(table, TreeConfig(max_depth=max_depth, seed=seed + i))
            for i in range(n_trees)
        ]
    )


class TestCompiler:
    def test_layout_invariants(self, small_mixed_classification):
        tree = train_tree(small_mixed_classification, TreeConfig(max_depth=6))
        flat = compile_tree(tree)
        assert flat.n_nodes == tree.n_nodes
        assert flat.max_depth == tree.depth
        # BFS layout: depths are sorted ascending, root first.
        assert np.all(np.diff(flat.depth) >= 0)
        assert flat.depth[0] == 0
        # Leaves have no children or split column; inner nodes have both.
        leaves = flat.feature < 0
        assert np.all(flat.left[leaves] == -1)
        assert np.all(flat.right[leaves] == -1)
        assert np.all(flat.left[~leaves] >= 0)
        # Every node carries a PMF (Appendix D: descents may stop anywhere).
        np.testing.assert_allclose(flat.predictions.sum(axis=1), 1.0)
        assert flat.nbytes() > 0

    def test_truncated_is_prefix_slice(self, small_mixed_classification):
        tree = train_tree(small_mixed_classification, TreeConfig(max_depth=7))
        flat = compile_tree(tree)
        for d in range(flat.max_depth + 1):
            cut = flat.truncated(d)
            assert cut.n_nodes <= flat.n_nodes
            assert cut.max_depth <= d
            # Prefix cut: surviving arrays match the full tree's prefix.
            np.testing.assert_array_equal(
                cut.predictions, flat.predictions[: cut.n_nodes]
            )
            # Cut-level nodes became leaves.
            assert np.all(cut.feature[cut.depth >= d] == -1)

    def test_truncated_rejects_negative(self, small_mixed_classification):
        tree = train_tree(small_mixed_classification, TreeConfig(max_depth=3))
        with pytest.raises(ValueError):
            compile_tree(tree).truncated(-1)

    def test_forest_accounting(self, small_mixed_classification):
        forest = make_forest(small_mixed_classification, n_trees=4)
        flat = compile_forest(forest)
        assert flat.n_trees == 4
        assert flat.total_nodes() == forest.total_nodes()
        assert flat.output_width == forest.n_classes
        assert flat.nbytes() == sum(t.nbytes() for t in flat.trees)

    def test_empty_forest_rejected(self):
        with pytest.raises(ValueError):
            FlatForest(trees=[], problem=ProblemKind.CLASSIFICATION)


class TestParity:
    """Flat kernel == node descent, bit for bit, everywhere."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_classification_proba(self, seed):
        table = make_table(seed, missing=0.1 if seed % 2 else 0.0)
        forest = make_forest(table, n_trees=3, seed=seed)
        predictor = BatchPredictor(compile_forest(forest))
        np.testing.assert_array_equal(
            predictor.predict_proba(table), forest.predict_proba(table)
        )
        np.testing.assert_array_equal(
            predictor.predict(table), forest.predict(table)
        )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_regression_values(self, seed):
        table = make_table(
            seed + 10,
            problem=ProblemKind.REGRESSION,
            missing=0.1 if seed % 2 else 0.0,
        )
        forest = make_forest(table, n_trees=3, seed=seed)
        predictor = BatchPredictor(compile_forest(forest))
        np.testing.assert_array_equal(
            predictor.predict_values(table), forest.predict_values(table)
        )

    def test_every_truncation_depth(self, small_mixed_classification):
        table = small_mixed_classification
        forest = make_forest(table, n_trees=2, max_depth=8)
        flat = compile_forest(forest)
        predictor = BatchPredictor(flat)
        for d in range(1, flat.max_depth() + 1):
            np.testing.assert_array_equal(
                predictor.predict_proba(table, max_depth=d),
                forest.predict_proba(table, max_depth=d),
            )
            # Compile-time slicing == run-time truncation.
            np.testing.assert_array_equal(
                BatchPredictor(flat.truncated(d)).predict_proba(table),
                predictor.predict_proba(table, max_depth=d),
            )

    def test_truncation_depth_regression(self, small_regression):
        forest = make_forest(small_regression, n_trees=2, max_depth=6)
        predictor = BatchPredictor(compile_forest(forest))
        for d in range(1, 7):
            np.testing.assert_array_equal(
                predictor.predict_values(small_regression, max_depth=d),
                forest.predict_values(small_regression, max_depth=d),
            )

    def test_unseen_categories_stop_at_node(self):
        """Codes absent from training data route like the node engine."""
        full = make_table(7, rows=400)
        cat_col = full.columns[3]  # first categorical column
        held_out = int(cat_col.max())
        train_rows = np.flatnonzero(cat_col != held_out)
        train = full.take(train_rows)
        assert len(train_rows) < full.n_rows  # the code really is held out
        forest = make_forest(train, n_trees=3, seed=7)
        predictor = BatchPredictor(compile_forest(forest))
        np.testing.assert_array_equal(
            predictor.predict_proba(full), forest.predict_proba(full)
        )

    def test_missing_codes_stop_at_node(self):
        table = make_table(11, missing=0.25)
        assert any(
            np.any(col == -1) for col in table.columns[3:]
        ) or any(np.any(np.isnan(col)) for col in table.columns[:3])
        forest = make_forest(table, n_trees=2, seed=11)
        predictor = BatchPredictor(compile_forest(forest))
        np.testing.assert_array_equal(
            predictor.predict_proba(table), forest.predict_proba(table)
        )

    def test_single_tree_matches_per_row_descent(self, tiny_classification):
        table = tiny_classification
        tree = train_tree(table, TreeConfig(max_depth=4))
        predictor = BatchPredictor(compile_forest(tree))
        np.testing.assert_array_equal(
            predictor.predict_proba(table), tree.predict_proba(table)
        )

    def test_forest_compiled_convenience(self, small_mixed_classification):
        forest = make_forest(small_mixed_classification, n_trees=2)
        np.testing.assert_array_equal(
            forest.compiled().predict_proba(small_mixed_classification),
            forest.predict_proba(small_mixed_classification),
        )

    def test_matrix_entry_point(self, small_mixed_classification):
        """A dense float64 row-matrix predicts like the typed table."""
        table = small_mixed_classification
        forest = make_forest(table, n_trees=2)
        predictor = BatchPredictor(compile_forest(forest))
        matrix = np.column_stack(
            [np.asarray(col, dtype=np.float64) for col in table.columns]
        )
        np.testing.assert_array_equal(
            predictor.predict_matrix(matrix), forest.predict(table)
        )
        np.testing.assert_array_equal(
            predictor.predict_proba_matrix(matrix), forest.predict_proba(table)
        )

    def test_proba_on_regression_rejected(self, small_regression):
        forest = make_forest(small_regression, n_trees=1)
        predictor = BatchPredictor(compile_forest(forest))
        with pytest.raises(ValueError):
            predictor.predict_proba(small_regression)
        with pytest.raises(ValueError):
            BatchPredictor(
                compile_forest(make_forest(make_table(0)))
            ).predict_values(make_table(0))


class TestFingerprints:
    def test_stable_across_persisted_forms(
        self, small_mixed_classification, tmp_path
    ):
        """In-memory, local-dir and DFS forms share one content hash."""
        forest = make_forest(small_mixed_classification)
        in_memory = fingerprint_trees(forest.trees)
        save_model_local(tmp_path / "m", "rf", forest.trees)
        assert model_fingerprint_local(tmp_path / "m") == in_memory
        fs = SimHdfs()
        save_model_hdfs(fs, "/models/rf", "rf", forest.trees)
        assert model_fingerprint_hdfs(fs, "/models/rf") == in_memory

    def test_name_and_path_do_not_matter(
        self, small_mixed_classification, tmp_path
    ):
        forest = make_forest(small_mixed_classification)
        save_model_local(tmp_path / "a", "first", forest.trees)
        save_model_local(tmp_path / "b", "second", forest.trees)
        assert model_fingerprint_local(
            tmp_path / "a"
        ) == model_fingerprint_local(tmp_path / "b")

    def test_different_models_differ(self, small_mixed_classification):
        a = make_forest(small_mixed_classification, max_depth=3)
        b = make_forest(small_mixed_classification, max_depth=6)
        assert fingerprint_trees(a.trees) != fingerprint_trees(b.trees)


class TestRegistry:
    def test_get_or_compile_hits_once(self, small_mixed_classification):
        registry = ModelRegistry(capacity=4)
        forest = make_forest(small_mixed_classification)
        entry, hit = registry.get_or_compile(forest)
        assert not hit
        again, hit = registry.get_or_compile(forest)
        assert hit
        assert again is entry
        assert registry.stats.hits == 1
        assert registry.stats.misses == 1

    def test_lru_eviction_order(self, small_mixed_classification):
        registry = ModelRegistry(capacity=2)
        models = [
            make_forest(small_mixed_classification, n_trees=1, max_depth=d)
            for d in (2, 3, 4)
        ]
        keys = [fingerprint_trees(m.trees) for m in models]
        registry.put(keys[0], models[0])
        registry.put(keys[1], models[1])
        registry.get(keys[0])  # refresh 0: now 1 is least recent
        registry.put(keys[2], models[2])
        assert keys[0] in registry
        assert keys[1] not in registry
        assert keys[2] in registry
        assert registry.stats.evictions == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            ModelRegistry(capacity=0)
        with pytest.raises(ValueError):
            ModelRegistry(max_bytes=0)

    def test_byte_budget_eviction(self, small_mixed_classification):
        models = [
            make_forest(small_mixed_classification, n_trees=1, max_depth=d)
            for d in (2, 3, 4)
        ]
        keys = [fingerprint_trees(m.trees) for m in models]
        sizes = {}
        probe = ModelRegistry(capacity=None)
        for key, model in zip(keys, models):
            sizes[key] = probe.put(key, model).nbytes()
        # Budget fits the two largest models but not all three.
        budget = sizes[keys[1]] + sizes[keys[2]]
        assert budget < sum(sizes.values())

        registry = ModelRegistry(capacity=None, max_bytes=budget)
        for key, model in zip(keys, models):
            registry.put(key, model)
        assert keys[0] not in registry  # LRU fell to byte pressure
        assert keys[1] in registry and keys[2] in registry
        assert registry.total_bytes() == budget
        assert registry.total_bytes() <= registry.max_bytes
        assert registry.stats.evictions == 1
        assert registry.stats.bytes_evicted == sizes[keys[0]]
        assert registry.stats.peak_bytes == sum(sizes.values())

    def test_oversized_entry_still_served(self, small_mixed_classification):
        """One model over budget evicts everything else but itself."""
        forest = make_forest(small_mixed_classification)
        key = fingerprint_trees(forest.trees)
        registry = ModelRegistry(capacity=None, max_bytes=1)
        entry = registry.put(key, forest)
        assert key in registry  # the newest entry is never evicted
        assert registry.total_bytes() == entry.nbytes() > 1
        small = make_forest(small_mixed_classification, n_trees=1, max_depth=2)
        registry.put(fingerprint_trees(small.trees), small)
        assert key not in registry  # now it is the LRU and over budget
        assert len(registry) == 1

    def test_replacement_does_not_leak_bytes(
        self, small_mixed_classification
    ):
        forest = make_forest(small_mixed_classification)
        key = fingerprint_trees(forest.trees)
        registry = ModelRegistry()
        first = registry.put(key, forest).nbytes()
        registry.put(key, forest)  # same key: replaces, must not double-count
        assert registry.total_bytes() == first
        registry.clear()
        assert registry.total_bytes() == 0 and len(registry) == 0

    def test_load_compiled_local_skips_reload(
        self, small_mixed_classification, tmp_path
    ):
        registry = ModelRegistry()
        forest = make_forest(small_mixed_classification)
        save_model_local(tmp_path / "m", "rf", forest.trees)
        entry, hit = load_compiled_local(tmp_path / "m", registry)
        assert not hit
        again, hit = load_compiled_local(tmp_path / "m", registry)
        assert hit
        assert again is entry
        np.testing.assert_array_equal(
            entry.predictor.predict(small_mixed_classification),
            forest.predict(small_mixed_classification),
        )

    def test_load_compiled_hdfs_shares_line_with_local(
        self, small_mixed_classification, tmp_path
    ):
        """The same content arriving via DFS hits the local-dir cache line."""
        registry = ModelRegistry()
        forest = make_forest(small_mixed_classification)
        save_model_local(tmp_path / "m", "rf", forest.trees)
        fs = SimHdfs()
        save_model_hdfs(fs, "/m", "other-name", forest.trees)
        _, hit = load_compiled_local(tmp_path / "m", registry)
        assert not hit
        _, hit = load_compiled_hdfs(fs, "/m", registry)
        assert hit

    def test_explicit_empty_registry_is_used(self, small_mixed_classification):
        """An empty (falsy-length) registry must not fall back to default."""
        registry = ModelRegistry()
        forest = make_forest(small_mixed_classification, n_trees=1)
        fs = SimHdfs()
        save_model_hdfs(fs, "/m", "rf", forest.trees)
        load_compiled_hdfs(fs, "/m", registry)
        assert len(registry) == 1


class TestPredictorCaching:
    def test_model_load_charged_once(self, small_mixed_classification):
        table = small_mixed_classification
        forest = make_forest(table)
        fs = SimHdfs()
        save_model_hdfs(fs, "/m", "rf", forest.trees)
        registry = ModelRegistry()
        system = SystemConfig(n_workers=3, compers_per_worker=2)
        first = predict_from_hdfs(fs, "/m", table, system, registry=registry)
        assert not first.cache_hit
        assert first.model_load_seconds > 0
        second = predict_from_hdfs(fs, "/m", table, system, registry=registry)
        assert second.cache_hit
        assert second.model_load_seconds == 0.0
        assert second.sim_seconds < first.sim_seconds
        np.testing.assert_array_equal(first.predictions, second.predictions)
        np.testing.assert_array_equal(
            first.predictions, forest.predict(table)
        )


class GatedPredictor(BatchPredictor):
    """Predictor whose kernel blocks until released (dispatcher control)."""

    def __init__(self, forest):
        super().__init__(forest)
        self.entered = threading.Event()
        self.release = threading.Event()

    def predict_proba_matrix(self, matrix, max_depth=None):
        self.entered.set()
        assert self.release.wait(5.0)
        return super().predict_proba_matrix(matrix, max_depth)


class TestServer:
    @pytest.fixture
    def compiled(self, small_mixed_classification):
        forest = make_forest(small_mixed_classification, n_trees=2)
        return compile_forest(forest), forest, small_mixed_classification

    def _matrix(self, table):
        return np.column_stack(
            [np.asarray(col, dtype=np.float64) for col in table.columns]
        )

    def test_predict_parity(self, compiled):
        flat, forest, table = compiled
        matrix = self._matrix(table)
        with PredictionServer(flat) as server:
            labels = server.predict(matrix)
            proba = server.predict_proba(matrix[:17])
        np.testing.assert_array_equal(labels, forest.predict(table))
        np.testing.assert_array_equal(
            proba, forest.predict_proba(table)[:17]
        )

    def test_requests_are_sliced_back(self, compiled):
        """Coalesced requests each get exactly their own rows back."""
        flat, forest, table = compiled
        matrix = self._matrix(table)
        expected = forest.predict(table)
        config = ServerConfig(max_batch_size=64, max_delay_seconds=0.05)
        with PredictionServer(flat, config) as server:
            futures = [
                server.submit(matrix[i : i + 3])
                for i in range(0, len(matrix) - 3, 3)
            ]
            for i, future in enumerate(futures):
                np.testing.assert_array_equal(
                    future.result(timeout=10.0),
                    expected[3 * i : 3 * i + 3],
                )
        report = server.report()
        assert report.n_requests == len(futures)
        assert report.n_rows == 3 * len(futures)
        # Micro-batching actually coalesced: fewer kernel calls than requests.
        assert report.n_batches < report.n_requests
        assert report.avg_batch_rows > 3

    def test_deadline_flushes_partial_batch(self, compiled):
        flat, forest, table = compiled
        config = ServerConfig(max_batch_size=100_000, max_delay_seconds=0.02)
        with PredictionServer(flat, config) as server:
            row = self._matrix(table)[:1]
            # Far fewer rows than the batch size: only the deadline flushes.
            label = server.predict(row, timeout=5.0)
        np.testing.assert_array_equal(label, forest.predict(table)[:1])

    def test_queue_overflow_sheds_load(self, compiled):
        flat, _, table = compiled
        predictor = GatedPredictor(flat)
        config = ServerConfig(
            max_batch_size=1, max_delay_seconds=0.0, queue_capacity=2
        )
        row = self._matrix(table)[:1]
        with PredictionServer(predictor, config) as server:
            first = server.submit(row, proba=True)
            assert predictor.entered.wait(5.0)  # dispatcher is busy serving
            server.submit(row, proba=True)
            server.submit(row, proba=True)  # queue now full (capacity 2)
            with pytest.raises(QueueFullError):
                server.submit(row, proba=True)
            assert server.stats.rejected == 1
            predictor.release.set()
            first.result(timeout=5.0)
        assert server.report().rejected == 1

    def test_stop_drains_admitted_requests(self, compiled):
        flat, forest, table = compiled
        matrix = self._matrix(table)
        config = ServerConfig(max_batch_size=4096, max_delay_seconds=0.5)
        server = PredictionServer(flat, config).start()
        futures = [server.submit(matrix[i : i + 1]) for i in range(20)]
        server.stop()
        assert not server.running
        expected = forest.predict(table)
        for i, future in enumerate(futures):
            assert future.done()
            np.testing.assert_array_equal(
                future.result(timeout=0), expected[i : i + 1]
            )

    def test_accepts_node_model_via_registry(self, compiled):
        _, forest, table = compiled
        registry = ModelRegistry()
        matrix = self._matrix(table)
        with PredictionServer(forest, registry=registry) as server:
            labels = server.predict(matrix)
        np.testing.assert_array_equal(labels, forest.predict(table))
        assert len(registry) == 1

    def test_regression_server(self, small_regression):
        forest = make_forest(small_regression, n_trees=2)
        matrix = self._matrix(small_regression)
        with PredictionServer(compile_forest(forest)) as server:
            values = server.predict(matrix)
            with pytest.raises(ValueError):
                server.submit(matrix[:1], proba=True)
        np.testing.assert_array_equal(
            values, forest.predict_values(small_regression)
        )

    def test_truncated_serving(self, compiled):
        flat, forest, table = compiled
        config = ServerConfig(max_depth=2)
        with PredictionServer(flat, config) as server:
            labels = server.predict(self._matrix(table))
        np.testing.assert_array_equal(
            labels, forest.predict(table, max_depth=2)
        )

    def test_kernel_errors_propagate_to_futures(self, compiled):
        flat, _, table = compiled

        class BrokenPredictor(BatchPredictor):
            def predict_proba_matrix(self, matrix, max_depth=None):
                raise RuntimeError("kernel exploded")

        with PredictionServer(BrokenPredictor(flat)) as server:
            future = server.submit(self._matrix(table)[:1])
            with pytest.raises(RuntimeError, match="kernel exploded"):
                future.result(timeout=5.0)

    def test_submit_requires_running_server(self, compiled):
        flat, _, table = compiled
        server = PredictionServer(flat)
        with pytest.raises(RuntimeError, match="not running"):
            server.submit(self._matrix(table)[:1])

    def test_result_timeout(self, compiled):
        flat, _, table = compiled
        predictor = GatedPredictor(flat)
        with PredictionServer(predictor) as server:
            future = server.submit(self._matrix(table)[:1], proba=True)
            with pytest.raises(TimeoutError):
                future.result(timeout=0.01)
            predictor.release.set()
            future.result(timeout=5.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServerConfig(max_batch_size=0)
        with pytest.raises(ValueError):
            ServerConfig(max_delay_seconds=-1)
        with pytest.raises(ValueError):
            ServerConfig(queue_capacity=0)

    def test_report_shapes(self, compiled):
        flat, _, table = compiled
        with PredictionServer(flat) as server:
            server.predict(self._matrix(table)[:8])
            report = server.report()
        assert report.n_rows == 8
        assert report.rows_per_second > 0
        assert report.p99_latency_ms >= report.p50_latency_ms >= 0
        summary = report.summary()
        assert "rows/s" in summary and "p50" in summary
        assert report.to_dict()["n_rows"] == 8


class TestCascadeCompile:
    def _fit_cascade(self):
        from repro.deepforest import CascadeConfig, CascadeForest, LocalBackend

        rng = np.random.default_rng(3)
        n, n_classes = 80, 3
        grain_features = {
            3: rng.normal(size=(n, 6)),
            5: rng.normal(size=(n, 4)),
        }
        labels = rng.integers(0, n_classes, size=n)
        cascade = CascadeForest(
            CascadeConfig(n_layers=2, n_forests=2, trees_per_forest=2, seed=9),
            LocalBackend(),
        )
        previous = None
        for layer in range(2):
            _, previous = cascade.fit_layer(
                layer, grain_features, labels, n_classes, previous
            )
        return cascade, grain_features

    def test_compiled_cascade_parity(self):
        cascade, grain_features = self._fit_cascade()
        compiled = cascade.compiled()
        node_layers = cascade.predict_proba_per_layer(grain_features)
        flat_layers = compiled.predict_proba_per_layer(grain_features)
        assert len(flat_layers) == len(node_layers)
        for node_pmf, flat_pmf in zip(node_layers, flat_layers):
            np.testing.assert_array_equal(flat_pmf, node_pmf)
        np.testing.assert_array_equal(
            compiled.predict(grain_features), cascade.predict(grain_features)
        )
        assert compiled.total_nodes() > 0

    def test_unfitted_cascade_rejected(self):
        from repro.deepforest import CascadeConfig, CascadeForest, LocalBackend
        from repro.serving.compiler import compile_cascade

        with pytest.raises(ValueError, match="not fitted"):
            compile_cascade(CascadeForest(CascadeConfig(), LocalBackend()))


class TestCliServing:
    @pytest.fixture
    def trained(self, small_mixed_classification, tmp_path):
        csv_path = tmp_path / "data.csv"
        write_csv(small_mixed_classification, csv_path)
        model_dir = tmp_path / "model"
        code = main(
            [
                "train", "--csv", str(csv_path), "--target", "label",
                "--model-dir", str(model_dir), "--forest", "2",
                "--max-depth", "5", "--workers", "2", "--compers", "2",
            ],
            out=io.StringIO(),
        )
        assert code == 0
        return csv_path, model_dir, tmp_path

    def _run(self, argv):
        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    def test_predict_engines_agree(self, trained):
        csv_path, model_dir, tmp_path = trained
        flat_out = tmp_path / "flat.csv"
        node_out = tmp_path / "node.csv"
        code, output = self._run(
            [
                "predict", "--csv", str(csv_path), "--target", "label",
                "--model-dir", str(model_dir), "--out", str(flat_out),
            ]
        )
        assert code == 0
        assert "engine=flat" in output
        code, output = self._run(
            [
                "predict", "--csv", str(csv_path), "--target", "label",
                "--model-dir", str(model_dir), "--out", str(node_out),
                "--engine", "node",
            ]
        )
        assert code == 0
        assert "engine=node" in output
        assert flat_out.read_text() == node_out.read_text()

    def test_serve_matches_predict(self, trained):
        csv_path, model_dir, tmp_path = trained
        predict_out = tmp_path / "preds.csv"
        serve_out = tmp_path / "served.csv"
        self._run(
            [
                "predict", "--csv", str(csv_path), "--target", "label",
                "--model-dir", str(model_dir), "--out", str(predict_out),
            ]
        )
        code, output = self._run(
            [
                "serve", "--csv", str(csv_path), "--target", "label",
                "--model-dir", str(model_dir), "--out", str(serve_out),
                "--request-rows", "7", "--batch-size", "32",
                "--max-delay-ms", "1",
            ]
        )
        assert code == 0
        assert "rows/s" in output
        assert serve_out.read_text() == predict_out.read_text()


# ----------------------------------------------------------------------
# quantized compilation (opt-in compact arrays)
# ----------------------------------------------------------------------
import os as _os

from repro.data.shm import list_segments
from repro.serving import (
    QUANTIZE_ATOL,
    QUANTIZE_MIN_AGREEMENT,
    ServingFleet,
    SharedCompiledModel,
    flat_fingerprint,
)
from repro.serving.fleet import FLEET_KILL_ENV
from repro.runtime.base import WorkerDiedError


def _matrix_of(table):
    return np.column_stack(
        [np.asarray(col, dtype=np.float64) for col in table.columns]
    )


class TestQuantize:
    def test_dtypes_and_size(self, small_mixed_classification):
        forest = make_forest(small_mixed_classification, n_trees=2)
        exact = compile_forest(forest)
        quant = compile_forest(forest, quantize=True)
        assert not exact.quantized and quant.quantized
        tree = quant.trees[0]
        assert tree.threshold.dtype == np.float32
        assert tree.predictions.dtype == np.float32
        assert tree.feature.dtype == np.int16
        assert tree.depth.dtype == np.int16
        assert tree.cat_len.dtype == np.int16
        assert quant.nbytes() < exact.nbytes()
        # Quantizing twice is a no-op (identity, not another copy).
        assert quant.quantized_copy() is quant

    def test_accuracy_contract(self):
        """Quantized serving honours the documented tolerance constants."""
        for seed in range(4):
            table = make_table(seed, missing=0.1 if seed % 2 else 0.0)
            forest = make_forest(table, n_trees=3, seed=seed)
            mat = _matrix_of(table)
            exact = BatchPredictor(compile_forest(forest))
            quant = BatchPredictor(compile_forest(forest, quantize=True))
            p, q = exact.predict_proba_matrix(mat), quant.predict_proba_matrix(mat)
            assert np.abs(p - q).max() <= QUANTIZE_ATOL
            agreement = float(
                (np.argmax(p, axis=1) == np.argmax(q, axis=1)).mean()
            )
            assert agreement >= QUANTIZE_MIN_AGREEMENT

    def test_threshold_quantization_rounds_up(self, small_mixed_classification):
        """float32 thresholds are the ceiling of the exact ones: a row whose
        value equals the split point must still route left (split points
        are data values, so exact equality is the common case)."""
        forest = make_forest(small_mixed_classification, n_trees=2)
        for et, qt in zip(
            compile_forest(forest).trees,
            compile_forest(forest, quantize=True).trees,
        ):
            numeric = et.numeric & (et.feature >= 0)
            exact64 = et.threshold[numeric]
            quant64 = qt.threshold[numeric].astype(np.float64)
            assert np.all(quant64 >= exact64)

    def test_registry_separate_cache_lines(self, small_mixed_classification):
        forest = make_forest(small_mixed_classification, n_trees=2)
        registry = ModelRegistry(capacity=4)
        exact, hit_e = registry.get_or_compile(forest)
        quant, hit_q = registry.get_or_compile(forest, quantize=True)
        assert not hit_e and not hit_q
        assert quant.key == exact.key + "+q32"
        assert quant.quantized and not exact.quantized
        again, hit = registry.get_or_compile(forest, quantize=True)
        assert hit and again is quant


# ----------------------------------------------------------------------
# registry thread-safety
# ----------------------------------------------------------------------
class TestRegistryConcurrency:
    def test_racing_get_or_compile_is_atomic(self, small_mixed_classification):
        forest = make_forest(small_mixed_classification, n_trees=2)
        registry = ModelRegistry(capacity=4)
        entries, errors = [], []
        gate = threading.Barrier(8)

        def hammer():
            try:
                gate.wait(timeout=10.0)
                entry, _ = registry.get_or_compile(forest)
                entries.append(entry)
            except BaseException as err:  # noqa: BLE001 - surfaced below
                errors.append(err)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert not errors
        # Exactly one compilation; every thread got the same entry.
        assert len(entries) == 8
        assert len({id(e) for e in entries}) == 1
        assert len(registry) == 1
        assert registry.stats.misses == 1
        assert registry.stats.hits == 7

    def test_concurrent_put_and_read_keep_accounting_consistent(self):
        registry = ModelRegistry(capacity=2)
        tables = [make_table(seed, rows=60) for seed in range(4)]
        forests = [make_forest(t, n_trees=1, max_depth=3) for t in tables]
        errors = []
        gate = threading.Barrier(4)

        def churn(forest):
            try:
                gate.wait(timeout=10.0)
                for _ in range(5):
                    entry, _ = registry.get_or_compile(forest)
                    registry.get(entry.key)
                    registry.keys()
                    registry.total_bytes()
            except BaseException as err:  # noqa: BLE001 - surfaced below
                errors.append(err)

        threads = [threading.Thread(target=churn, args=(f,)) for f in forests]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert not errors
        assert len(registry) <= 2  # capacity honoured under the race
        # Byte accounting matches exactly what is resident.
        resident = sum(
            registry.get(key).nbytes() for key in registry.keys()
        )
        assert registry.total_bytes() == resident


# ----------------------------------------------------------------------
# structured rejection counters
# ----------------------------------------------------------------------
class TestRejectionCounters:
    def test_queue_full_and_shutdown_are_distinguished(
        self, small_mixed_classification
    ):
        forest = make_forest(small_mixed_classification, n_trees=1)
        server = PredictionServer(forest)
        row = _matrix_of(small_mixed_classification)[:1]
        with pytest.raises(RuntimeError):
            server.submit(row)  # not started yet: a shutdown rejection
        assert server.stats.rejected_shutdown == 1
        assert server.stats.rejected_queue_full == 0
        assert server.stats.rejected == 1
        with server:
            server.predict(row, timeout=10.0)
        with pytest.raises(RuntimeError):
            server.submit(row)  # stopped again
        report = server.report()
        assert report.rejected_shutdown == 2
        assert report.rejected_queue_full == 0
        assert report.rejected == 2
        payload = report.to_dict()
        assert payload["rejected_queue_full"] == 0
        assert payload["rejected_shutdown"] == 2
        assert payload["rejected"] == 2
        assert "queue_full=0" in report.summary()
        assert "shutdown=2" in report.summary()


# ----------------------------------------------------------------------
# the serving fleet
# ----------------------------------------------------------------------
class TestFleet:
    def test_exact_mode_bit_identical_to_single_process(self):
        table = make_table(3, missing=0.1)
        forest = make_forest(table, n_trees=3, seed=3)
        mat = _matrix_of(table)
        with PredictionServer(forest) as solo:
            ref_proba = solo.predict_proba(mat)
            ref_labels = solo.predict(mat)
        before = set(list_segments())
        with PredictionServer(forest, n_workers=3) as server:
            proba = server.predict_proba(mat)
            labels = server.predict(mat)
            assert np.array_equal(proba, ref_proba)
            assert np.array_equal(labels, ref_labels)
        assert set(list_segments()) == before  # all model segments gone

    def test_regression_parity(self, small_regression):
        forest = make_forest(small_regression, n_trees=2)
        mat = _matrix_of(small_regression)
        with PredictionServer(forest) as solo:
            ref = solo.predict(mat)
        with PredictionServer(forest, n_workers=2) as server:
            out = server.predict(mat)
        assert np.array_equal(out, ref)

    def test_quantized_fleet_within_tolerance(self):
        table = make_table(5)
        forest = make_forest(table, n_trees=3, seed=5)
        mat = _matrix_of(table)
        with PredictionServer(forest) as solo:
            ref = solo.predict_proba(mat)
        with PredictionServer(forest, n_workers=2, quantize=True) as server:
            out = server.predict_proba(mat)
            assert server.report().fleet["model_quantized"]
        assert np.abs(out - ref).max() <= QUANTIZE_ATOL
        agreement = float(
            (np.argmax(out, axis=1) == np.argmax(ref, axis=1)).mean()
        )
        assert agreement >= QUANTIZE_MIN_AGREEMENT

    def test_zero_per_worker_copies(self):
        """Every worker maps exactly the published image — no copies."""
        table = make_table(2)
        forest = make_forest(table, n_trees=2, seed=2)
        mat = _matrix_of(table)
        with PredictionServer(forest, n_workers=3) as server:
            server.predict(mat)
            report = server.report()
            model_nbytes = report.fleet["model_nbytes"]
            assert model_nbytes > 0
            for worker in report.fleet["workers"]:
                assert worker["shm_bytes_mapped"] == model_nbytes
                assert worker["model_attaches"] == 1

    def test_hot_swap_reattaches_and_rolls_back(self):
        table = make_table(4)
        forest_a = make_forest(table, n_trees=2, seed=4)
        forest_b = make_forest(table, n_trees=3, seed=44)
        mat = _matrix_of(table)
        with PredictionServer(forest_a) as solo:
            ref_a = solo.predict_proba(mat)
        with PredictionServer(forest_b) as solo:
            ref_b = solo.predict_proba(mat)
        before = set(list_segments())
        with PredictionServer(forest_a, n_workers=2) as server:
            key_a = server.model_key
            assert np.array_equal(server.predict_proba(mat), ref_a)
            key_b = server.swap_model(forest_b)
            assert key_b != key_a
            assert np.array_equal(server.predict_proba(mat), ref_b)
            # Re-publishing the same content is the rollback path.
            assert server.swap_model(forest_a) == key_a
            assert np.array_equal(server.predict_proba(mat), ref_a)
            report = server.report()
            for worker in report.fleet["workers"]:
                assert worker["model_attaches"] == 3  # a, b, a again
            with pytest.raises(ValueError, match="problem kind"):
                server.swap_model(
                    make_forest(
                        make_table(1, problem=ProblemKind.REGRESSION),
                        n_trees=1,
                    )
                )
        assert set(list_segments()) == before

    def test_swap_races_concurrent_submits(self):
        """Hot swap under fire: client threads hammer ``predict_proba``
        while the model flips between two forests.  Every result must be
        exactly one of the two reference outputs — an in-flight batch
        finishes on the model it started with, a later batch uses the
        new one, never a blend — and no shm segment may leak."""
        table = make_table(5, missing=0.1)
        forest_a = make_forest(table, n_trees=2, max_depth=2, seed=5)
        forest_b = make_forest(table, n_trees=3, max_depth=6, seed=55)
        mat = _matrix_of(table)
        with PredictionServer(forest_a) as solo:
            ref_a = solo.predict_proba(mat)
        with PredictionServer(forest_b) as solo:
            ref_b = solo.predict_proba(mat)
        assert not np.array_equal(ref_a, ref_b)
        before = set(list_segments())
        stop = threading.Event()
        errors: list[str] = []
        completed = [0] * 3

        with PredictionServer(forest_a, n_workers=2) as server:

            def client(slot):
                try:
                    while not stop.is_set():
                        out = server.predict_proba(mat, timeout=60.0)
                        if not (
                            np.array_equal(out, ref_a)
                            or np.array_equal(out, ref_b)
                        ):
                            errors.append("result matches neither model")
                            return
                        completed[slot] += 1
                except Exception as error:  # noqa: BLE001 - report in main
                    errors.append(repr(error))

            threads = [
                threading.Thread(target=client, args=(slot,))
                for slot in range(3)
            ]
            for thread in threads:
                thread.start()
            try:
                for flip in range(6):
                    server.swap_model(
                        forest_b if flip % 2 == 0 else forest_a
                    )
                    time.sleep(0.02)
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=120.0)
            assert not errors
            assert all(count > 0 for count in completed)
        assert set(list_segments()) == before

    def test_killed_worker_respawns_without_losing_results(self, monkeypatch):
        """A worker hard-killed mid-shard: its batch completes (retried on
        the respawn), later batches are exact, nothing is duplicated."""
        monkeypatch.setenv(FLEET_KILL_ENV, "2:1")
        table = make_table(6, missing=0.1)
        forest = make_forest(table, n_trees=2, seed=6)
        mat = _matrix_of(table)
        with PredictionServer(forest) as solo:
            ref = solo.predict_proba(mat)
        before = set(list_segments())
        with PredictionServer(forest, n_workers=2) as server:
            for _ in range(3):
                out = server.predict_proba(mat)
                assert out.shape == ref.shape
                assert np.array_equal(out, ref)
            report = server.report()
            assert report.fleet["respawns"] == 1
            per_worker = {
                w["worker_id"]: w for w in report.fleet["workers"]
            }
            assert per_worker[2]["respawns"] == 1
            # No result was dropped or double-counted: per-worker rows sum
            # to exactly the rows served.
            total_rows = sum(w["rows"] for w in report.fleet["workers"])
            assert total_rows == 3 * len(mat)
        assert set(list_segments()) == before

    def test_retry_budget_exhaustion_is_structured(self, monkeypatch):
        monkeypatch.setenv(FLEET_KILL_ENV, "1:1")
        table = make_table(7)
        forest = make_forest(table, n_trees=1, seed=7)
        mat = _matrix_of(table)
        with ServingFleet(n_workers=1, max_shard_retries=0) as fleet:
            fleet.publish(forest)
            with pytest.raises(WorkerDiedError, match="giving up"):
                fleet.predict_batch(mat, proba=True, timeout=30.0)

    def test_shared_model_fingerprint_is_content_addressed(self):
        table = make_table(8)
        forest = make_forest(table, n_trees=2, seed=8)
        flat = compile_forest(forest)
        assert flat_fingerprint(flat) == flat_fingerprint(compile_forest(forest))
        assert flat_fingerprint(flat) != flat_fingerprint(
            compile_forest(forest, quantize=True)
        )

    def test_fleet_api_misuse_is_loud(self):
        fleet = ServingFleet(n_workers=1)
        with pytest.raises(RuntimeError, match="not running"):
            fleet.predict_batch(np.zeros((1, 1)), proba=False)
        with fleet:
            with pytest.raises(RuntimeError, match="no model"):
                fleet.predict_batch(np.zeros((1, 1)), proba=False)
        with pytest.raises(ValueError):
            ServingFleet(n_workers=0)


class TestCliFleetServing(TestCliServing):
    __test__ = True

    def test_serve_with_workers_matches_in_process(self, trained):
        csv_path, model_dir, tmp_path = trained
        solo_out = tmp_path / "solo.csv"
        fleet_out = tmp_path / "fleet.csv"
        code, _ = self._run(
            [
                "serve", "--csv", str(csv_path), "--target", "label",
                "--model-dir", str(model_dir), "--out", str(solo_out),
                "--request-rows", "7", "--batch-size", "32",
            ]
        )
        assert code == 0
        code, output = self._run(
            [
                "serve", "--csv", str(csv_path), "--target", "label",
                "--model-dir", str(model_dir), "--out", str(fleet_out),
                "--request-rows", "7", "--batch-size", "32",
                "--workers", "2",
            ]
        )
        assert code == 0
        assert fleet_out.read_text() == solo_out.read_text()
        assert "workers=2" in output
        assert "rejections: queue_full=0 shutdown=0" in output
        assert "worker 1:" in output and "worker 2:" in output
        assert "shm_bytes_mapped=" in output
