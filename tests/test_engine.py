"""End-to-end tests of the distributed TreeServer engine.

The headline invariant (DESIGN.md #1): distributed training produces a tree
*identical* to the serial exact builder, for any machine count, any
``tau_subtree`` / ``tau_dfs`` setting, any scheduling interleaving, and all
tree kinds.  Plus protocol-level checks: clean state shutdown, zero leaked
task memory, the load matrix returning to zero, Section-V messages never
carrying row ids through the master, and fault recovery.
"""

import numpy as np
import pytest

from repro.cluster import CrashPlan
from repro.core import (
    SystemConfig,
    TreeConfig,
    TreeServer,
    decision_tree_job,
    extra_trees_job,
    random_forest_job,
    staged_job,
    train_tree,
    trees_equal,
)
from repro.core.builder import bootstrap_row_ids
from repro.core.jobs import TrainingJob
from repro.datasets import SyntheticSpec, generate


def small_system(n_rows: int, workers: int = 4, compers: int = 2, **kw) -> SystemConfig:
    return SystemConfig(
        n_workers=workers, compers_per_worker=compers, **kw
    ).scaled_to(n_rows)


class TestExactness:
    @pytest.mark.parametrize("workers", [1, 2, 5, 9])
    def test_machine_count_invariance(self, small_mixed_classification, workers):
        table = small_mixed_classification
        cfg = TreeConfig(max_depth=7)
        serial = train_tree(table, cfg)
        report = TreeServer(small_system(table.n_rows, workers=workers)).fit(
            table, [decision_tree_job("dt", cfg)]
        )
        assert trees_equal(serial, report.tree("dt"))

    @pytest.mark.parametrize("tau_pair", [(8, 8), (32, 64), (64, 512), (4096, 8192)])
    def test_tau_invariance(self, small_mixed_classification, tau_pair):
        """Any subtree/dfs threshold split yields the same tree: pure
        column-tasks, pure subtree-tasks, and every hybrid in between."""
        table = small_mixed_classification
        cfg = TreeConfig(max_depth=7)
        serial = train_tree(table, cfg)
        system = SystemConfig(
            n_workers=4,
            compers_per_worker=2,
            tau_subtree=tau_pair[0],
            tau_dfs=tau_pair[1],
        )
        report = TreeServer(system).fit(table, [decision_tree_job("dt", cfg)])
        assert trees_equal(serial, report.tree("dt"))

    def test_whole_tree_as_single_subtree_task(self, small_mixed_classification):
        table = small_mixed_classification
        cfg = TreeConfig(max_depth=6)
        system = SystemConfig(
            n_workers=3, compers_per_worker=2, tau_subtree=10**6, tau_dfs=10**6
        )
        report = TreeServer(system).fit(table, [decision_tree_job("dt", cfg)])
        assert report.counters.subtree_tasks == 1
        assert report.counters.column_tasks == 0
        assert trees_equal(train_tree(table, cfg), report.tree("dt"))

    def test_pure_column_tasks(self, small_mixed_classification):
        table = small_mixed_classification
        cfg = TreeConfig(max_depth=5)
        system = SystemConfig(
            n_workers=4, compers_per_worker=2, tau_subtree=0, tau_dfs=0
        )
        report = TreeServer(system).fit(table, [decision_tree_job("dt", cfg)])
        assert report.counters.subtree_tasks == 0
        assert trees_equal(train_tree(table, cfg), report.tree("dt"))

    def test_regression_with_missing_values(self, small_regression):
        table = small_regression
        cfg = TreeConfig(max_depth=6)
        report = TreeServer(small_system(table.n_rows)).fit(
            table, [decision_tree_job("dt", cfg)]
        )
        assert trees_equal(train_tree(table, cfg), report.tree("dt"))

    def test_forest_trees_match_serial(self, small_mixed_classification):
        table = small_mixed_classification
        job = random_forest_job("rf", n_trees=4, config=TreeConfig(max_depth=5), seed=2)
        report = TreeServer(small_system(table.n_rows)).fit(table, [job])
        for i, request in enumerate(job.stages[0].trees):
            assert trees_equal(
                train_tree(table, request.config), report.trees("rf")[i]
            )

    def test_extra_trees_match_serial(self, small_mixed_classification):
        table = small_mixed_classification
        job = extra_trees_job("et", n_trees=3, seed=9)
        report = TreeServer(small_system(table.n_rows)).fit(table, [job])
        for i, request in enumerate(job.stages[0].trees):
            assert trees_equal(
                train_tree(table, request.config), report.trees("et")[i]
            )

    def test_bootstrap_forest_matches_serial(self, small_mixed_classification):
        table = small_mixed_classification
        job = random_forest_job(
            "rf", n_trees=3, config=TreeConfig(max_depth=5), seed=4,
            bootstrap_rows=True,
        )
        report = TreeServer(small_system(table.n_rows)).fit(table, [job])
        for i, request in enumerate(job.stages[0].trees):
            serial = train_tree(
                table,
                request.config,
                row_ids=bootstrap_row_ids(request.config.seed, table.n_rows),
            )
            assert trees_equal(serial, report.trees("rf")[i])

    def test_npool_one_equals_npool_many(self, small_mixed_classification):
        table = small_mixed_classification
        job = random_forest_job("rf", n_trees=4, config=TreeConfig(max_depth=5), seed=7)
        r1 = TreeServer(small_system(table.n_rows, n_pool=1)).fit(table, [job])
        r2 = TreeServer(small_system(table.n_rows, n_pool=200)).fit(table, [job])
        for t1, t2 in zip(r1.trees("rf"), r2.trees("rf")):
            assert trees_equal(t1, t2)

    def test_pure_root_single_leaf(self):
        table = generate(
            SyntheticSpec(
                name="const", n_rows=50, n_numeric=2, n_categorical=0,
                n_classes=2, planted_depth=0, noise=0.0, seed=1,
            )
        )
        assert np.all(table.target == table.target[0])
        system = SystemConfig(
            n_workers=2, compers_per_worker=1, tau_subtree=0, tau_dfs=0
        )
        report = TreeServer(system).fit(
            table, [decision_tree_job("dt", TreeConfig(max_depth=5))]
        )
        assert report.tree("dt").n_nodes == 1


class TestProtocolInvariants:
    def test_determinism_of_sim_time(self, small_mixed_classification):
        """The whole run is a pure function of its inputs."""
        table = small_mixed_classification
        job = random_forest_job("rf", n_trees=3, config=TreeConfig(max_depth=5), seed=1)
        r1 = TreeServer(small_system(table.n_rows)).fit(table, [job])
        r2 = TreeServer(small_system(table.n_rows)).fit(table, [job])
        assert r1.sim_seconds == r2.sim_seconds
        assert r1.cluster.total_bytes == r2.cluster.total_bytes

    def test_master_messages_carry_no_row_ids(self, small_mixed_classification):
        """Section V: plans stay O(|C|); row ids go worker-to-worker.

        We assert it through byte accounting: the master's total sent bytes
        must be far below the row-id traffic on the data plane.
        """
        table = small_mixed_classification
        cfg = TreeConfig(max_depth=7)
        report = TreeServer(small_system(table.n_rows)).fit(
            table, [decision_tree_job("dt", cfg)]
        )
        kinds = report.cluster.bytes_by_kind
        master_plane = sum(
            kinds.get(k, 0)
            for k in (
                "column_plan", "subtree_plan", "split_confirm",
                "task_delete", "expect_fetches",
            )
        )
        data_plane = kinds.get("row_response", 0) + kinds.get(
            "column_response", 0
        )
        assert data_plane > master_plane

    def test_counters_consistency(self, small_mixed_classification):
        table = small_mixed_classification
        cfg = TreeConfig(max_depth=7)
        report = TreeServer(small_system(table.n_rows)).fit(
            table, [decision_tree_job("dt", cfg)]
        )
        counters = report.counters
        assert counters.trees_completed == 1
        assert counters.plans_dispatched >= (
            counters.column_tasks + counters.subtree_tasks
        ) - counters.extra.get("extra_retries", 0)
        tree = report.tree("dt")
        leaves = sum(1 for n in tree.nodes() if n.is_leaf)
        internal = tree.n_nodes - leaves
        # Every internal node above tau was a column-task split.
        assert counters.column_tasks <= internal + counters.leaves_finalized

    def test_memory_returns_to_zero(self, small_mixed_classification):
        """fit() itself asserts this; run twice to cover forests too."""
        table = small_mixed_classification
        job = random_forest_job("rf", n_trees=3, config=TreeConfig(max_depth=6), seed=5)
        report = TreeServer(small_system(table.n_rows)).fit(table, [job])
        assert report.cluster.avg_peak_memory_bytes > 0

    def test_multiple_jobs_in_one_run(self, small_mixed_classification):
        table = small_mixed_classification
        jobs: list[TrainingJob] = [
            decision_tree_job("dt1", TreeConfig(max_depth=4)),
            decision_tree_job("dt2", TreeConfig(max_depth=6, seed=1)),
            random_forest_job("rf", n_trees=3, config=TreeConfig(max_depth=4), seed=2),
        ]
        report = TreeServer(small_system(table.n_rows)).fit(table, jobs)
        assert set(report.models) == {"dt1", "dt2", "rf"}
        assert len(report.trees("rf")) == 3
        assert trees_equal(
            train_tree(table, TreeConfig(max_depth=4)), report.tree("dt1")
        )

    def test_staged_job_dependencies(self, small_mixed_classification):
        table = small_mixed_classification
        job = staged_job(
            "boost",
            [
                [TreeConfig(max_depth=4, seed=1), TreeConfig(max_depth=4, seed=2)],
                [TreeConfig(max_depth=4, seed=3)],
            ],
        )
        report = TreeServer(small_system(table.n_rows)).fit(table, [job])
        assert len(report.trees("boost")) == 3

    def test_duplicate_job_names_rejected(self, small_mixed_classification):
        table = small_mixed_classification
        with pytest.raises(ValueError, match="unique"):
            TreeServer(small_system(table.n_rows)).fit(
                table,
                [decision_tree_job("x"), decision_tree_job("x")],
            )

    def test_no_jobs_rejected(self, small_mixed_classification):
        with pytest.raises(ValueError, match="no jobs"):
            TreeServer(small_system(100)).fit(small_mixed_classification, [])

    def test_replication_one_works(self, small_mixed_classification):
        table = small_mixed_classification
        cfg = TreeConfig(max_depth=5)
        system = SystemConfig(
            n_workers=4, compers_per_worker=2, column_replication=1
        ).scaled_to(table.n_rows)
        report = TreeServer(system).fit(table, [decision_tree_job("dt", cfg)])
        assert trees_equal(train_tree(table, cfg), report.tree("dt"))


class TestSchedulingBehaviour:
    def test_hybrid_uses_both_ends(self):
        table = generate(
            SyntheticSpec(
                name="sched", n_rows=3000, n_numeric=6, n_categorical=0,
                n_classes=2, planted_depth=8, noise=0.25, seed=3,
            )
        )
        system = SystemConfig(
            n_workers=4, compers_per_worker=2, tau_subtree=40, tau_dfs=400
        )
        report = TreeServer(system).fit(
            table, [decision_tree_job("dt", TreeConfig(max_depth=10))]
        )
        assert report.counters.head_insertions > 0
        assert report.counters.tail_insertions > 0
        assert report.counters.subtree_tasks > 0
        assert report.counters.column_tasks > 0

    def test_more_compers_is_not_slower(self, small_mixed_classification):
        table = small_mixed_classification
        job = random_forest_job("rf", n_trees=6, config=TreeConfig(max_depth=6), seed=1)
        slow = TreeServer(small_system(table.n_rows, compers=1)).fit(table, [job])
        fast = TreeServer(small_system(table.n_rows, compers=8)).fit(table, [job])
        assert fast.sim_seconds <= slow.sim_seconds * 1.01

    def test_npool_one_is_slower_than_many(self, small_mixed_classification):
        table = small_mixed_classification
        job = random_forest_job("rf", n_trees=8, config=TreeConfig(max_depth=6), seed=1)
        serial_pool = TreeServer(small_system(table.n_rows, n_pool=1)).fit(
            table, [job]
        )
        parallel_pool = TreeServer(
            small_system(table.n_rows, n_pool=200)
        ).fit(table, [job])
        assert parallel_pool.sim_seconds < serial_pool.sim_seconds


class TestFaultTolerance:
    def test_worker_crash_recovers_with_replicas(self, small_mixed_classification):
        table = small_mixed_classification
        cfg = TreeConfig(max_depth=6)
        system = SystemConfig(
            n_workers=5, compers_per_worker=2, column_replication=2
        ).scaled_to(table.n_rows)
        report = TreeServer(system).fit(
            table,
            [decision_tree_job("dt", cfg)],
            crash_plans=[CrashPlan(machine_id=3, at_time=0.004)],
        )
        assert report.counters.revoked_trees >= 1
        # The model is still the exact one.
        assert trees_equal(train_tree(table, cfg), report.tree("dt"))

    def test_crash_before_start_is_survivable(self, small_mixed_classification):
        table = small_mixed_classification
        cfg = TreeConfig(max_depth=5)
        system = SystemConfig(
            n_workers=4, compers_per_worker=2, column_replication=2
        ).scaled_to(table.n_rows)
        report = TreeServer(system).fit(
            table,
            [decision_tree_job("dt", cfg)],
            crash_plans=[CrashPlan(machine_id=2, at_time=0.0)],
        )
        assert trees_equal(train_tree(table, cfg), report.tree("dt"))

    def test_crash_without_replica_raises(self, small_mixed_classification):
        table = small_mixed_classification
        system = SystemConfig(
            n_workers=4, compers_per_worker=2, column_replication=1
        ).scaled_to(table.n_rows)
        with pytest.raises(RuntimeError, match="replica"):
            TreeServer(system).fit(
                table,
                [decision_tree_job("dt", TreeConfig(max_depth=5))],
                crash_plans=[CrashPlan(machine_id=1, at_time=0.004)],
            )

    def test_master_crash_not_modelled(self, small_mixed_classification):
        table = small_mixed_classification
        with pytest.raises(ValueError, match="master"):
            TreeServer(small_system(table.n_rows)).fit(
                table,
                [decision_tree_job("dt")],
                crash_plans=[CrashPlan(machine_id=0, at_time=1.0)],
            )

    def test_forest_survives_crash(self, small_mixed_classification):
        table = small_mixed_classification
        job = random_forest_job("rf", n_trees=4, config=TreeConfig(max_depth=5), seed=3)
        system = SystemConfig(
            n_workers=5, compers_per_worker=2, column_replication=2
        ).scaled_to(table.n_rows)
        report = TreeServer(system).fit(
            table, [job], crash_plans=[CrashPlan(machine_id=2, at_time=0.005)]
        )
        for i, request in enumerate(job.stages[0].trees):
            assert trees_equal(
                train_tree(table, request.config), report.trees("rf")[i]
            )


class TestMetrics:
    def test_report_fields_populated(self, small_mixed_classification):
        table = small_mixed_classification
        report = TreeServer(small_system(table.n_rows)).fit(
            table, [decision_tree_job("dt", TreeConfig(max_depth=6))]
        )
        assert report.sim_seconds > 0
        assert report.cluster.avg_worker_cpu_percent > 0
        assert report.cluster.total_bytes > 0
        assert len(report.cluster.machines) == 5  # 4 workers + master
        assert report.cluster.summary()

    def test_forest_helper(self, small_mixed_classification):
        table = small_mixed_classification
        job = random_forest_job("rf", n_trees=3, config=TreeConfig(max_depth=5), seed=1)
        report = TreeServer(small_system(table.n_rows)).fit(table, [job])
        forest = report.forest("rf")
        proba = forest.predict_proba(table)
        assert proba.shape == (table.n_rows, table.n_classes)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_single_tree_helper_rejects_forest(self, small_mixed_classification):
        table = small_mixed_classification
        job = random_forest_job("rf", n_trees=2, config=TreeConfig(max_depth=4), seed=1)
        report = TreeServer(small_system(table.n_rows)).fit(table, [job])
        with pytest.raises(ValueError, match="expected 1"):
            report.tree("rf")
