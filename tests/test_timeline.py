"""Tests for execution-timeline recording and the utilization curve."""

import pytest

from repro.cluster import Machine, SimulationEngine, utilization_curve


class TestTimelineRecording:
    def test_off_by_default(self):
        engine = SimulationEngine()
        machine = Machine(engine, 0, 1, 10.0)
        machine.execute(10, lambda: None)
        engine.run()
        assert machine.stats.timeline == []

    def test_entries_match_busy_time(self):
        engine = SimulationEngine()
        machine = Machine(engine, 0, 2, 10.0)
        machine.record_timeline = True
        machine.execute(10, lambda: None, label="a")
        machine.execute(20, lambda: None, label="b")
        machine.execute(10, lambda: None, label="c")
        engine.run()
        assert len(machine.stats.timeline) == 3
        total = sum(end - start for _, start, end in machine.stats.timeline)
        assert total == pytest.approx(machine.stats.busy_core_seconds)
        labels = [label for label, _, _ in machine.stats.timeline]
        assert set(labels) == {"a", "b", "c"}

    def test_queued_item_starts_after_running(self):
        engine = SimulationEngine()
        machine = Machine(engine, 0, 1, 10.0)
        machine.record_timeline = True
        machine.execute(10, lambda: None)
        machine.execute(10, lambda: None)
        engine.run()
        (first, second) = sorted(
            machine.stats.timeline, key=lambda t: t[1]
        )
        assert second[1] == pytest.approx(first[2])


class TestUtilizationCurve:
    def test_uniform_load(self):
        engine = SimulationEngine()
        machine = Machine(engine, 0, 1, 10.0)
        machine.record_timeline = True
        machine.execute(100, lambda: None)  # busy 0..10s
        engine.run()
        curve = utilization_curve([machine], elapsed=10.0, n_bins=5)
        assert all(v == pytest.approx(1.0) for v in curve)

    def test_ramp(self):
        engine = SimulationEngine()
        machine = Machine(engine, 0, 2, 10.0)
        machine.record_timeline = True
        # One core busy the whole time, a second joins at t=5.
        machine.execute(100, lambda: None)
        engine.schedule(5.0, lambda: machine.execute(50, lambda: None))
        engine.run()
        curve = utilization_curve([machine], elapsed=10.0, n_bins=2)
        assert curve[0] == pytest.approx(1.0)
        assert curve[1] == pytest.approx(2.0)

    def test_integral_equals_busy_seconds(self):
        engine = SimulationEngine()
        machines = [Machine(engine, i, 2, 10.0) for i in range(2)]
        for machine in machines:
            machine.record_timeline = True
        machines[0].execute(37, lambda: None)
        machines[1].execute(53, lambda: None)
        machines[1].execute(11, lambda: None)
        engine.run()
        elapsed = engine.now
        curve = utilization_curve(machines, elapsed, n_bins=50)
        integral = sum(curve) * (elapsed / 50)
        total_busy = sum(m.stats.busy_core_seconds for m in machines)
        assert integral == pytest.approx(total_busy, rel=1e-9)

    def test_degenerate_inputs(self):
        assert utilization_curve([], 0.0, 4) == [0.0] * 4


class TestEndToEndUtilization:
    def test_treeserver_run_produces_nonzero_curve(
        self, small_mixed_classification
    ):
        """Wire the flag through a real run and see compute happening."""
        from repro.core import SystemConfig, TreeConfig, decision_tree_job
        from repro.core.server import TreeServer
        from repro.cluster.topology import SimulatedCluster

        # Use the engine pieces directly so we can flip record_timeline.
        from repro.core.load_balance import assign_columns_to_workers
        from repro.core.master import MasterActor, _TableInfo
        from repro.core.worker import WorkerActor

        table = small_mixed_classification
        system = SystemConfig(n_workers=3, compers_per_worker=2).scaled_to(
            table.n_rows
        )
        cluster = SimulatedCluster(3, 2)
        for machine in cluster.machines:
            machine.record_timeline = True
        placement = assign_columns_to_workers(
            table.n_columns, cluster.worker_ids(), 2
        )
        for wid in cluster.worker_ids():
            held = {c for c, ws in placement.items() if wid in ws}
            cluster.register(wid, WorkerActor(cluster, wid, table, held))
        info = _TableInfo(table.n_rows, table.n_columns, table.problem,
                          table.n_classes)
        master = MasterActor(
            cluster, info, [decision_tree_job("dt", TreeConfig(max_depth=6))],
            system, placement,
        )
        cluster.register(0, master)
        master.start()
        cluster.run()
        from repro.cluster import utilization_curve as curve_fn

        curve = curve_fn(cluster.machines, cluster.engine.now, 10)
        assert max(curve) > 0.0


class TestRunReportUtilization:
    def test_fit_with_record_timeline(self, small_mixed_classification):
        from repro.core import (
            SystemConfig,
            TreeConfig,
            TreeServer,
            random_forest_job,
        )

        table = small_mixed_classification
        system = SystemConfig(n_workers=3, compers_per_worker=2).scaled_to(
            table.n_rows
        )
        report = TreeServer(system).fit(
            table,
            [random_forest_job("rf", 3, TreeConfig(max_depth=5), seed=1)],
            record_timeline=True,
        )
        curve = report.utilization_curve(10)
        assert len(curve) == 10
        assert max(curve) > 0.0

    def test_fit_without_timeline_rejects_curve(
        self, small_mixed_classification
    ):
        from repro.core import SystemConfig, TreeConfig, TreeServer
        from repro.core.jobs import decision_tree_job

        table = small_mixed_classification
        system = SystemConfig(n_workers=2, compers_per_worker=1).scaled_to(
            table.n_rows
        )
        report = TreeServer(system).fit(
            table, [decision_tree_job("dt", TreeConfig(max_depth=4))]
        )
        with pytest.raises(ValueError, match="record_timeline"):
            report.utilization_curve()
