"""Tests for forest models (PMF averaging, depth truncation, guards)."""

import numpy as np
import pytest

from repro.core import TreeConfig, train_tree
from repro.core.jobs import random_forest_job
from repro.data.schema import ProblemKind
from repro.ensemble import ForestModel


def make_forest(table, n_trees=4, max_depth=5, seed=0):
    job = random_forest_job("rf", n_trees, TreeConfig(max_depth=max_depth), seed=seed)
    return ForestModel(
        [train_tree(table, t.config) for t in job.stages[0].trees]
    )


class TestForestModel:
    def test_needs_trees(self):
        with pytest.raises(ValueError):
            ForestModel([])

    def test_mixed_problems_rejected(
        self, small_mixed_classification, small_regression
    ):
        cls_tree = train_tree(small_mixed_classification, TreeConfig(max_depth=3))
        reg_tree = train_tree(small_regression, TreeConfig(max_depth=3))
        with pytest.raises(ValueError, match="disagree"):
            ForestModel([cls_tree, reg_tree])

    def test_proba_is_average_of_members(self, small_mixed_classification):
        table = small_mixed_classification
        forest = make_forest(table, n_trees=3)
        manual = sum(t.predict_proba(table) for t in forest.trees) / 3
        np.testing.assert_allclose(forest.predict_proba(table), manual)

    def test_proba_rows_sum_to_one(self, small_mixed_classification):
        forest = make_forest(small_mixed_classification)
        proba = forest.predict_proba(small_mixed_classification)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_regression_average(self, small_regression):
        forest = make_forest(small_regression, n_trees=3)
        manual = sum(t.predict_values(small_regression) for t in forest.trees) / 3
        np.testing.assert_allclose(forest.predict_values(small_regression), manual)

    def test_predict_dispatch(self, small_regression, small_mixed_classification):
        reg = make_forest(small_regression, n_trees=2)
        cls = make_forest(small_mixed_classification, n_trees=2)
        assert reg.problem is ProblemKind.REGRESSION
        assert cls.predict(small_mixed_classification).dtype.kind == "i"
        with pytest.raises(ValueError):
            reg.predict_proba(small_regression)
        with pytest.raises(ValueError):
            cls.predict_values(small_mixed_classification)

    def test_depth_truncation_propagates(self, small_mixed_classification):
        table = small_mixed_classification
        forest = make_forest(table, max_depth=6)
        shallow = forest.predict_proba(table, max_depth=2)
        manual = sum(
            t.predict_proba(table, max_depth=2) for t in forest.trees
        ) / forest.n_trees
        np.testing.assert_allclose(shallow, manual)

    def test_total_nodes(self, small_mixed_classification):
        forest = make_forest(small_mixed_classification, n_trees=2)
        assert forest.total_nodes() == sum(t.n_nodes for t in forest.trees)

    def test_forest_no_worse_than_worst_tree(self, small_mixed_classification):
        table = small_mixed_classification
        forest = make_forest(table, n_trees=5, max_depth=8)
        forest_acc = (forest.predict(table) == table.target).mean()
        tree_accs = [
            (t.predict(table) == table.target).mean() for t in forest.trees
        ]
        assert forest_acc >= min(tree_accs) - 0.05
