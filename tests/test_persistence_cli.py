"""Tests for model persistence and the command-line interface."""

import io
import json

import numpy as np
import pytest

from repro.cli import main
from repro.core import TreeConfig, train_tree, trees_equal
from repro.core.persistence import (
    load_model_hdfs,
    load_model_local,
    save_model_hdfs,
    save_model_local,
)
from repro.data import write_csv
from repro.hdfs import SimHdfs


class TestPersistence:
    def test_local_round_trip(self, small_mixed_classification, tmp_path):
        table = small_mixed_classification
        trees = [
            train_tree(table, TreeConfig(max_depth=5, seed=i)) for i in range(3)
        ]
        save_model_local(tmp_path / "model", "rf", trees)
        model = load_model_local(tmp_path / "model")
        assert model.n_trees == 3
        for original, loaded in zip(trees, model.trees):
            assert trees_equal(original, loaded)

    def test_hdfs_round_trip(self, small_regression):
        fs = SimHdfs()
        trees = [train_tree(small_regression, TreeConfig(max_depth=4))]
        save_model_hdfs(fs, "/models/reg", "dt", trees)
        model = load_model_hdfs(fs, "/models/reg")
        np.testing.assert_allclose(
            model.predict(small_regression),
            trees[0].predict(small_regression),
        )

    def test_manifest_contents(self, small_mixed_classification, tmp_path):
        trees = [train_tree(small_mixed_classification, TreeConfig(max_depth=3))]
        save_model_local(tmp_path / "m", "solo", trees)
        manifest = json.loads((tmp_path / "m" / "_model.json").read_text())
        assert manifest["name"] == "solo"
        assert manifest["n_trees"] == 1
        assert manifest["problem"] == "classification"

    def test_empty_model_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_model_local(tmp_path, "x", [])
        with pytest.raises(ValueError):
            save_model_hdfs(SimHdfs(), "/m", "x", [])

    def test_predictions_survive_round_trip(
        self, small_mixed_classification, tmp_path
    ):
        table = small_mixed_classification
        trees = [
            train_tree(table, TreeConfig(max_depth=6, seed=i)) for i in range(2)
        ]
        save_model_local(tmp_path / "model", "rf", trees)
        model = load_model_local(tmp_path / "model")
        from repro.ensemble import ForestModel

        np.testing.assert_allclose(
            model.predict_proba(table),
            ForestModel(trees).predict_proba(table),
        )


class TestCli:
    @pytest.fixture
    def csv_path(self, small_mixed_classification, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(small_mixed_classification, path)
        return path

    def _run(self, argv):
        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    def test_train_and_evaluate(self, csv_path, tmp_path):
        model_dir = tmp_path / "model"
        code, output = self._run(
            [
                "train", "--csv", str(csv_path), "--target", "label",
                "--model-dir", str(model_dir), "--max-depth", "6",
                "--workers", "3", "--compers", "2",
            ]
        )
        assert code == 0
        assert "trained 1 tree(s)" in output
        assert (model_dir / "_model.json").exists()

        code, output = self._run(
            [
                "evaluate", "--csv", str(csv_path), "--target", "label",
                "--model-dir", str(model_dir),
            ]
        )
        assert code == 0
        assert "accuracy:" in output
        value = float(output.split("accuracy:")[1])
        assert value > 0.5  # training-set accuracy of a depth-6 exact tree

    def test_train_forest(self, csv_path, tmp_path):
        model_dir = tmp_path / "forest"
        code, output = self._run(
            [
                "train", "--csv", str(csv_path), "--target", "label",
                "--model-dir", str(model_dir), "--forest", "4",
                "--workers", "3", "--compers", "2", "--max-depth", "5",
            ]
        )
        assert code == 0
        assert "trained 4 tree(s)" in output

    def test_predict_writes_output(self, csv_path, tmp_path):
        model_dir = tmp_path / "model"
        self._run(
            [
                "train", "--csv", str(csv_path), "--target", "label",
                "--model-dir", str(model_dir), "--max-depth", "4",
                "--workers", "2", "--compers", "2",
            ]
        )
        out_path = tmp_path / "preds.csv"
        code, output = self._run(
            [
                "predict", "--csv", str(csv_path), "--target", "label",
                "--model-dir", str(model_dir), "--out", str(out_path),
            ]
        )
        assert code == 0
        lines = out_path.read_text().strip().splitlines()
        assert lines[0] == "prediction"
        assert len(lines) == 301  # header + 300 rows

    def test_datasets_listing(self):
        code, output = self._run(["datasets"])
        assert code == 0
        assert "higgs_boson" in output
        assert "allstate" in output

    def test_datasets_materialize(self, tmp_path):
        out_path = tmp_path / "ds.csv"
        code, output = self._run(
            [
                "datasets", "--materialize", "susy", "--small",
                "--out", str(out_path),
            ]
        )
        assert code == 0
        assert out_path.exists()

    def test_materialize_without_out_fails(self):
        code, _ = self._run(["datasets", "--materialize", "susy"])
        assert code == 2
