"""Tests for B_plan deque semantics, T_prog, the tree pool and M_work."""

import pytest

from repro.cluster import CostModel
from repro.core.config import TreeConfig
from repro.core.jobs import random_forest_job, staged_job
from repro.core.load_balance import (
    COMP,
    RECV,
    SEND,
    LoadMatrix,
    TaskCharge,
    assign_column_task,
    assign_columns_to_workers,
    assign_subtree_task,
)
from repro.core.scheduler import PlanDeque, ProgressTable, TreePool
from repro.core.tasks import PlanEntry, TreeContext


def make_entry(path: int, n_rows: int, uid: int = 1) -> PlanEntry:
    ctx = TreeContext(
        tree_uid=uid,
        config=TreeConfig(),
        candidate_columns=(0, 1),
        bootstrap=False,
        n_table_rows=1000,
    )
    return PlanEntry(
        task=(uid, path),
        n_rows=n_rows,
        depth=0,
        parent=None,
        ctx=ctx,
        is_subtree=False,
    )


class TestPlanDeque:
    def test_small_nodes_go_to_head(self):
        deque = PlanDeque(tau_dfs=100)
        deque.insert(make_entry(1, 500))  # tail
        deque.insert(make_entry(2, 50))  # head
        deque.insert(make_entry(3, 400))  # tail
        assert deque.pop().path == 2
        assert deque.pop().path == 1
        assert deque.pop().path == 3
        assert deque.pop() is None

    def test_head_insertion_is_lifo(self):
        """DFS behaviour: the most recently created small node runs first."""
        deque = PlanDeque(tau_dfs=100)
        deque.insert(make_entry(4, 10))
        deque.insert(make_entry(5, 10))
        assert deque.pop().path == 5
        assert deque.pop().path == 4

    def test_tail_insertion_is_fifo(self):
        """BFS behaviour: large nodes are expanded level by level."""
        deque = PlanDeque(tau_dfs=10)
        deque.insert(make_entry(2, 500))
        deque.insert(make_entry(3, 500))
        assert deque.pop().path == 2
        assert deque.pop().path == 3

    def test_boundary_value_goes_to_head(self):
        deque = PlanDeque(tau_dfs=100)
        deque.insert(make_entry(2, 100))
        assert deque.head_insertions == 1

    def test_counters_and_peak(self):
        deque = PlanDeque(tau_dfs=100)
        for i in range(5):
            deque.insert(make_entry(i + 2, 50))
        assert deque.head_insertions == 5
        assert deque.peak_size == 5

    def test_remove_tree(self):
        deque = PlanDeque(tau_dfs=100)
        deque.insert(make_entry(2, 50, uid=1))
        deque.insert(make_entry(2, 50, uid=2))
        deque.insert(make_entry(3, 50, uid=1))
        assert deque.remove_tree(1) == 2
        assert len(deque) == 1
        assert deque.pop().tree_uid == 2

    def test_push_head_overrides_rule(self):
        deque = PlanDeque(tau_dfs=10)
        deque.insert(make_entry(2, 500))
        deque.push_head(make_entry(9, 500))
        assert deque.pop().path == 9


class TestProgressTable:
    def test_column_task_split_nets_plus_one(self):
        prog = ProgressTable()
        prog.start_tree(1)
        assert not prog.add(1, +1)  # split into two children: net +1
        assert prog.pending(1) == 2

    def test_subtree_task_nets_minus_one(self):
        prog = ProgressTable()
        prog.start_tree(1)
        assert prog.add(1, -1)  # tree completed
        assert prog.active_trees() == 0

    def test_tree_completes_exactly_at_zero(self):
        prog = ProgressTable()
        prog.start_tree(7)
        assert not prog.add(7, +1)
        assert not prog.add(7, -1)
        assert prog.add(7, -1)

    def test_negative_raises(self):
        prog = ProgressTable()
        prog.start_tree(1)
        prog.add(1, -1)
        with pytest.raises(KeyError):
            prog.add(1, -1)

    def test_double_start_rejected(self):
        prog = ProgressTable()
        prog.start_tree(1)
        with pytest.raises(ValueError):
            prog.start_tree(1)

    def test_drop(self):
        prog = ProgressTable()
        prog.start_tree(1)
        prog.drop(1)
        assert prog.active_trees() == 0


class TestTreePool:
    def test_npool_caps_admission(self):
        job = random_forest_job("rf", n_trees=10, seed=0)
        pool = TreePool(jobs=[job], n_pool=3)
        tickets = []
        while True:
            t = pool.admit()
            if t is None:
                break
            tickets.append(t)
        assert len(tickets) == 3
        pool.tree_completed(tickets[0])
        assert pool.admit() is not None

    def test_stage_dependency_gates_eligibility(self):
        job = staged_job(
            "boost",
            [[TreeConfig(seed=1), TreeConfig(seed=2)], [TreeConfig(seed=3)]],
        )
        pool = TreePool(jobs=[job], n_pool=100)
        first = pool.admit()
        second = pool.admit()
        assert pool.admit() is None  # stage 1 locked
        pool.tree_completed(first)
        assert pool.admit() is None  # still locked: one stage-0 tree left
        pool.tree_completed(second)
        third = pool.admit()
        assert third is not None
        assert third.stage_index == 1

    def test_all_done(self):
        job = random_forest_job("rf", n_trees=2, seed=0)
        pool = TreePool(jobs=[job], n_pool=10)
        a, b = pool.admit(), pool.admit()
        assert not pool.all_done()
        pool.tree_completed(a)
        pool.tree_completed(b)
        assert pool.all_done()

    def test_tree_indices_unique_across_stages(self):
        job = staged_job(
            "j", [[TreeConfig(seed=i) for i in range(2)], [TreeConfig(seed=9)]]
        )
        pool = TreePool(jobs=[job], n_pool=10)
        seen = set()
        t1, t2 = pool.admit(), pool.admit()
        seen.update({t1.tree_index, t2.tree_index})
        pool.tree_completed(t1)
        pool.tree_completed(t2)
        t3 = pool.admit()
        seen.add(t3.tree_index)
        assert seen == {0, 1, 2}


class TestLoadMatrix:
    def test_add_and_revert_returns_to_zero(self):
        matrix = LoadMatrix(3)
        charge = TaskCharge()
        matrix.add(1, COMP, 100.0, charge)
        matrix.add(2, SEND, 50.0, charge)
        assert matrix.get(1, COMP) == 100.0
        matrix.revert(charge)
        assert matrix.is_zero()

    def test_subtree_assignment_picks_least_loaded_key(self):
        matrix = LoadMatrix(3)
        pre = TaskCharge()
        matrix.add(1, COMP, 1e9, pre)  # worker 1 is busy
        holders = {0: [1, 2], 1: [2, 3]}
        cost = CostModel()
        assignment = assign_subtree_task(
            matrix, [1, 2, 3], holders, (0, 1), None, 100, cost
        )
        assert assignment.key_worker in (2, 3)

    def test_subtree_local_columns_skip_comm(self):
        matrix = LoadMatrix(2)
        holders = {0: [1], 1: [1]}
        cost = CostModel()
        assignment = assign_subtree_task(
            matrix, [1], holders, (0, 1), None, 100, cost
        )
        assert assignment.key_worker == 1
        assert set(assignment.local_columns) == {0, 1}
        assert not assignment.server_map
        # Only the compute charge remains (no comm entries for local data).
        assert matrix.get(1, SEND) == 0.0
        assert matrix.get(1, RECV) == 0.0

    def test_column_assignment_reuses_fetcher_on_shared_holders(self):
        """When all replicas coincide, reusing one worker avoids charging the
        parent an extra I_x send — the paper's objective prefers that."""
        matrix = LoadMatrix(4)
        holders = {c: [1, 2] for c in range(4)}
        cost = CostModel()
        assignment = assign_column_task(matrix, holders, (0, 1, 2, 3), 3, 100, cost)
        assert set(assignment.worker_columns) == {1}

    def test_column_assignment_fans_out_on_disjoint_holders(self):
        """Real placements spread columns, so tasks fan out across workers."""
        matrix = LoadMatrix(4)
        holders = {0: [1], 1: [2], 2: [1, 2]}
        cost = CostModel()
        assignment = assign_column_task(matrix, holders, (0, 1, 2), 3, 100, cost)
        assert set(assignment.worker_columns) == {1, 2}

    def test_column_assignment_charges_parent_send(self):
        matrix = LoadMatrix(3)
        holders = {0: [1]}
        cost = CostModel()
        assign_column_task(matrix, holders, (0,), 2, 100, cost)
        assert matrix.get(2, SEND) == 100.0
        assert matrix.get(1, RECV) == 100.0

    def test_parent_local_fetch_not_charged(self):
        matrix = LoadMatrix(3)
        holders = {0: [2]}
        cost = CostModel()
        assign_column_task(matrix, holders, (0,), 2, 100, cost)
        assert matrix.get(2, SEND) == 0.0  # worker 2 fetches from itself
        assert matrix.get(2, RECV) == 0.0

    def test_no_holder_raises(self):
        matrix = LoadMatrix(2)
        with pytest.raises(RuntimeError, match="holder"):
            assign_column_task(matrix, {}, (0,), None, 10, CostModel())

    def test_drop_worker(self):
        matrix = LoadMatrix(2)
        charge = TaskCharge()
        matrix.add(1, COMP, 5.0, charge)
        matrix.drop_worker(1)
        assert matrix.get(1, COMP) == 0.0


class TestColumnPlacement:
    def test_every_column_gets_k_distinct_holders(self):
        placement = assign_columns_to_workers(20, [1, 2, 3, 4, 5], replication=2)
        for col, holders in placement.items():
            assert len(holders) == 2
            assert len(set(holders)) == 2

    def test_replication_capped_by_workers(self):
        placement = assign_columns_to_workers(5, [1, 2], replication=3)
        for holders in placement.values():
            assert len(holders) == 2

    def test_balanced_distribution(self):
        placement = assign_columns_to_workers(100, [1, 2, 3, 4], replication=2)
        loads = {w: 0 for w in [1, 2, 3, 4]}
        for holders in placement.values():
            for w in holders:
                loads[w] += 1
        assert max(loads.values()) - min(loads.values()) <= 2
